"""Dataset registry and the inductive split protocol.

Each simulated dataset mirrors one of the paper's benchmarks at ~20x reduced
scale (see DESIGN.md for the calibration table):

- ``pubmed-sim``  — small citation-style graph, 3 classes, sparse label
  rate (only 60 labeled training nodes, like the Planetoid split).
- ``flickr-sim``  — medium image-style graph, 7 classes, low homophily and
  noisy features (the regime where all methods sit near 50% in the paper).
- ``reddit-sim``  — large social-style graph, 41 classes, heavy-tailed
  degrees and strong structure (the regime where GNNs reach ~90%+).

Following the paper, the *original graph* handed to condensation contains
only the training nodes and their interconnections; validation nodes act as
support nodes for MCond's inductive loss; test nodes are the unseen
inductive batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np
import scipy.sparse as sp

from repro.errors import DatasetError
from repro.graph.generators import SbmConfig, generate_sbm_graph
from repro.graph.graph import Graph
from repro.registry import DATASETS, register_dataset

__all__ = [
    "DatasetSpec",
    "IncrementalBatch",
    "InductiveSplit",
    "DATASET_SPECS",
    "dataset_names",
    "load_dataset",
    "make_split",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a simulated dataset.

    ``feature_snr`` sets how separable the *raw* features are: the class
    centers are scaled to ``feature_snr * feature_noise / sqrt(dim)`` per
    coordinate, so the expected center-to-center distance is roughly
    ``sqrt(2) * feature_snr`` noise standard deviations regardless of the
    feature dimension.  Low values force models to rely on message passing
    — the regime where the paper's comparisons are meaningful.
    """

    name: str
    num_nodes: int
    num_classes: int
    feature_dim: int
    avg_degree: float
    homophily: float
    degree_exponent: float
    feature_snr: float
    label_noise: float
    smoothing_rounds: int
    train_fraction: float
    val_fraction: float
    test_fraction: float
    labeled_train: int | None  # None => all training nodes are labeled
    paper_analogue: str

    def scaled(self, scale: float) -> "DatasetSpec":
        """Return a copy with the node count multiplied by ``scale``."""
        if scale <= 0:
            raise DatasetError(f"scale must be positive, got {scale}")
        nodes = max(int(round(self.num_nodes * scale)), 10 * self.num_classes)
        return DatasetSpec(
            name=self.name, num_nodes=nodes, num_classes=self.num_classes,
            feature_dim=self.feature_dim, avg_degree=self.avg_degree,
            homophily=self.homophily, degree_exponent=self.degree_exponent,
            feature_snr=self.feature_snr, label_noise=self.label_noise,
            smoothing_rounds=self.smoothing_rounds,
            train_fraction=self.train_fraction,
            val_fraction=self.val_fraction, test_fraction=self.test_fraction,
            labeled_train=self.labeled_train,
            paper_analogue=self.paper_analogue)


DATASET_SPECS: dict[str, DatasetSpec] = {
    "pubmed-sim": DatasetSpec(
        name="pubmed-sim", num_nodes=2000, num_classes=3, feature_dim=128,
        avg_degree=4.5, homophily=0.93, degree_exponent=0.0,
        feature_snr=1.7, label_noise=0.10, smoothing_rounds=0,
        train_fraction=0.80, val_fraction=0.08, test_fraction=0.12,
        labeled_train=60,
        paper_analogue="Pubmed (19,717 nodes / 44,338 edges / 500 feats / 3 classes)"),
    "flickr-sim": DatasetSpec(
        name="flickr-sim", num_nodes=4400, num_classes=7, feature_dim=128,
        avg_degree=20.0, homophily=0.45, degree_exponent=1.6,
        feature_snr=1.15, label_noise=0.25, smoothing_rounds=0,
        train_fraction=0.50, val_fraction=0.25, test_fraction=0.25,
        labeled_train=None,
        paper_analogue="Flickr (89,250 nodes / 899,756 edges / 500 feats / 7 classes)"),
    "reddit-sim": DatasetSpec(
        name="reddit-sim", num_nodes=7700, num_classes=41, feature_dim=160,
        avg_degree=50.0, homophily=0.88, degree_exponent=1.3,
        feature_snr=1.5, label_noise=0.05, smoothing_rounds=0,
        train_fraction=0.66, val_fraction=0.10, test_fraction=0.24,
        labeled_train=None,
        paper_analogue="Reddit (232,965 nodes / 11.6M edges / 602 feats / 41 classes)"),
    "tiny-sim": DatasetSpec(
        name="tiny-sim", num_nodes=300, num_classes=3, feature_dim=16,
        avg_degree=6.0, homophily=0.85, degree_exponent=0.0,
        feature_snr=2.5, label_noise=0.05, smoothing_rounds=0,
        train_fraction=0.60, val_fraction=0.15, test_fraction=0.25,
        labeled_train=None,
        paper_analogue="small fixture for fast tests"),
}


for _spec in DATASET_SPECS.values():
    register_dataset(_spec.name)(_spec)


def dataset_names() -> list[str]:
    """Registered dataset identifiers."""
    return DATASETS.keys()


@dataclass(frozen=True)
class IncrementalBatch:
    """An inductive batch: features plus its connectivity (Eq. 3 inputs).

    Attributes
    ----------
    features:
        ``(n, d)`` features ``x`` of the unseen nodes.
    incremental:
        ``(n, N)`` adjacency ``a`` into the original (training) graph.
    intra:
        ``(n, n)`` adjacency ``ea`` among the unseen nodes (used only in
        the graph-batch setting).
    labels:
        ``(n,)`` ground-truth labels for evaluation.
    """

    features: np.ndarray
    incremental: sp.csr_matrix
    intra: sp.csr_matrix
    labels: np.ndarray

    @property
    def num_nodes(self) -> int:
        return self.features.shape[0]

    def subset(self, indices: np.ndarray) -> "IncrementalBatch":
        """Restrict the batch to ``indices`` (used for mini-batch serving)."""
        idx = np.asarray(indices, dtype=np.int64)
        return IncrementalBatch(
            features=self.features[idx],
            incremental=self.incremental[idx].tocsr(),
            intra=self.intra[idx][:, idx].tocsr(),
            labels=self.labels[idx])


class InductiveSplit:
    """A dataset with the paper's inductive evaluation protocol.

    The *original graph* (to be condensed, and used as the deployment
    baseline) is the induced subgraph on training nodes.  Validation nodes
    double as MCond's support nodes; test nodes form the inductive batch.
    """

    def __init__(self, full: Graph, train_idx: np.ndarray, val_idx: np.ndarray,
                 test_idx: np.ndarray, labeled_idx: np.ndarray | None = None,
                 name: str = "custom") -> None:
        self.full = full
        self.train_idx = np.asarray(train_idx, dtype=np.int64)
        self.val_idx = np.asarray(val_idx, dtype=np.int64)
        self.test_idx = np.asarray(test_idx, dtype=np.int64)
        self.name = name
        all_idx = np.concatenate([self.train_idx, self.val_idx, self.test_idx])
        if np.unique(all_idx).size != all_idx.size:
            raise DatasetError("train/val/test indices overlap")
        if all_idx.size > full.num_nodes:
            raise DatasetError("more split indices than nodes")
        if labeled_idx is None:
            labeled_idx = self.train_idx
        self.labeled_idx = np.asarray(labeled_idx, dtype=np.int64)
        if not np.isin(self.labeled_idx, self.train_idx).all():
            raise DatasetError("labeled indices must be a subset of train indices")

    # ------------------------------------------------------------------
    @cached_property
    def original(self) -> Graph:
        """The original graph ``T``: training nodes and their edges only."""
        return self.full.subgraph(self.train_idx)

    @cached_property
    def labeled_in_original(self) -> np.ndarray:
        """Positions of labeled nodes within :attr:`original` row order."""
        position = {int(node): row for row, node in enumerate(self.train_idx)}
        return np.asarray([position[int(i)] for i in self.labeled_idx], dtype=np.int64)

    @property
    def num_classes(self) -> int:
        return self.full.num_classes

    def incremental_batch(self, which: str) -> IncrementalBatch:
        """Build the inductive batch for ``which`` in {'val', 'test'}."""
        if which == "val":
            idx = self.val_idx
        elif which == "test":
            idx = self.test_idx
        else:
            raise DatasetError(f"unknown batch {which!r}; use 'val' or 'test'")
        if self.full.labels is None:
            raise DatasetError("full graph has no labels")
        return IncrementalBatch(
            features=self.full.features[idx],
            incremental=self.full.cross_adjacency(idx, self.train_idx),
            intra=self.full.adjacency[idx][:, idx].tocsr(),
            labels=self.full.labels[idx])

    def __repr__(self) -> str:
        return (
            f"InductiveSplit(name={self.name!r}, nodes={self.full.num_nodes}, "
            f"train={self.train_idx.size}, val={self.val_idx.size}, "
            f"test={self.test_idx.size}, labeled={self.labeled_idx.size})")


def make_split(graph: Graph, train_fraction: float, val_fraction: float,
               test_fraction: float, labeled_train: int | None,
               rng: np.random.Generator, name: str = "custom") -> InductiveSplit:
    """Randomly partition ``graph`` into an :class:`InductiveSplit`.

    Guarantees at least one labeled training node per class (required by
    class-balanced condensation).
    """
    total = train_fraction + val_fraction + test_fraction
    if total > 1.0 + 1e-9:
        raise DatasetError(f"split fractions sum to {total} > 1")
    n = graph.num_nodes
    order = rng.permutation(n)
    n_train = int(round(train_fraction * n))
    n_val = int(round(val_fraction * n))
    n_test = min(int(round(test_fraction * n)), n - n_train - n_val)
    train_idx = order[:n_train]
    val_idx = order[n_train:n_train + n_val]
    test_idx = order[n_train + n_val:n_train + n_val + n_test]

    labeled_idx = train_idx
    if labeled_train is not None:
        if graph.labels is None:
            raise DatasetError("cannot subsample labels on an unlabeled graph")
        labeled_idx = _sample_labeled(graph.labels, train_idx, labeled_train, rng)
    split = InductiveSplit(graph, train_idx, val_idx, test_idx, labeled_idx, name)
    _ensure_class_coverage(graph, split)
    return split


def _sample_labeled(labels: np.ndarray, train_idx: np.ndarray, count: int,
                    rng: np.random.Generator) -> np.ndarray:
    """Pick ``count`` labeled training nodes, class-balanced where possible."""
    classes = np.unique(labels[train_idx])
    per_class = max(count // classes.size, 1)
    chosen: list[np.ndarray] = []
    for cls in classes:
        candidates = train_idx[labels[train_idx] == cls]
        take = min(per_class, candidates.size)
        chosen.append(rng.choice(candidates, size=take, replace=False))
    flat = np.concatenate(chosen)
    if flat.size < count:
        remaining = np.setdiff1d(train_idx, flat, assume_unique=False)
        extra = rng.choice(remaining, size=min(count - flat.size, remaining.size),
                           replace=False)
        flat = np.concatenate([flat, extra])
    return np.sort(flat[:count])


def _ensure_class_coverage(graph: Graph, split: InductiveSplit) -> None:
    if graph.labels is None:
        return
    covered = np.unique(graph.labels[split.labeled_idx])
    if covered.size < graph.num_classes:
        missing = sorted(set(range(graph.num_classes)) - set(covered.tolist()))
        raise DatasetError(
            f"labeled training set misses classes {missing}; increase the "
            "label budget or dataset size")


def load_dataset(name: str, seed: int = 0, scale: float = 1.0) -> InductiveSplit:
    """Generate a simulated dataset by registry name.

    Parameters
    ----------
    name:
        One of :func:`dataset_names`.
    seed:
        Seed controlling both graph generation and the split.
    scale:
        Multiplier on the node count (benchmarks use 1.0; tests use less).
    """
    if name not in DATASETS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}")
    entry = DATASETS.get(name)
    if not isinstance(entry, DatasetSpec):
        # Plugin datasets register a loader callable instead of a spec.
        return entry(seed=seed, scale=scale)
    spec = entry
    if scale != 1.0:
        spec = spec.scaled(scale)
    rng = np.random.default_rng(seed)
    class_sizes = _imbalanced_class_sizes(spec, rng)
    feature_noise = 1.0
    config = SbmConfig(
        class_sizes=class_sizes,
        feature_dim=spec.feature_dim,
        avg_degree=spec.avg_degree,
        homophily=spec.homophily,
        degree_exponent=spec.degree_exponent,
        feature_noise=feature_noise,
        center_scale=spec.feature_snr * feature_noise / np.sqrt(spec.feature_dim),
        label_noise=spec.label_noise,
        smoothing_rounds=spec.smoothing_rounds,
    )
    graph = generate_sbm_graph(config, seed=rng)
    labeled = spec.labeled_train
    return make_split(graph, spec.train_fraction, spec.val_fraction,
                      spec.test_fraction, labeled, rng, name=spec.name)


def _imbalanced_class_sizes(spec: DatasetSpec, rng: np.random.Generator) -> np.ndarray:
    """Mildly imbalanced class sizes (real datasets are never uniform)."""
    weights = rng.dirichlet(np.full(spec.num_classes, 8.0))
    sizes = np.maximum((weights * spec.num_nodes).astype(np.int64), 4)
    # Adjust the largest class so sizes sum exactly to num_nodes.
    sizes[np.argmax(sizes)] += spec.num_nodes - int(sizes.sum())
    if sizes.min() <= 0:
        raise DatasetError("class size adjustment produced an empty class")
    return sizes
