"""NetworkX interoperability.

Real deployments often hold graphs in networkx; these converters bring
them into (and out of) the library's :class:`~repro.graph.graph.Graph`
container, preserving features and labels stored as node attributes.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph.graph import Graph

__all__ = ["from_networkx", "to_networkx"]


def from_networkx(nx_graph: nx.Graph, feature_key: str = "x",
                  label_key: str = "y") -> Graph:
    """Convert a networkx graph with per-node feature/label attributes.

    Nodes are re-indexed to ``0..N-1`` in ``nx_graph.nodes()`` order.
    Every node must carry a ``feature_key`` attribute (array-like of one
    consistent length); ``label_key`` is optional but must be present on
    all nodes or none.
    """
    if nx_graph.number_of_nodes() == 0:
        raise GraphError("cannot convert an empty networkx graph")
    nodes = list(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}

    features: list[np.ndarray] = []
    labels: list[int] = []
    labelled = 0
    for node in nodes:
        data = nx_graph.nodes[node]
        if feature_key not in data:
            raise GraphError(
                f"node {node!r} is missing feature attribute {feature_key!r}")
        features.append(np.asarray(data[feature_key], dtype=np.float64))
        if label_key in data:
            labelled += 1
            labels.append(int(data[label_key]))
    if labelled not in (0, len(nodes)):
        raise GraphError(
            f"{labelled}/{len(nodes)} nodes have labels; label all or none")
    feature_matrix = np.vstack(features)

    rows, cols, weights = [], [], []
    for u, v, data in nx_graph.edges(data=True):
        weight = float(data.get("weight", 1.0))
        rows.extend((index[u], index[v]))
        cols.extend((index[v], index[u]))
        weights.extend((weight, weight))
    adjacency = sp.coo_matrix((weights, (rows, cols)),
                              shape=(len(nodes), len(nodes))).tocsr()
    adjacency.sum_duplicates()
    label_array = np.asarray(labels, dtype=np.int64) if labelled else None
    return Graph(adjacency, feature_matrix, label_array)


def to_networkx(graph: Graph, feature_key: str = "x",
                label_key: str = "y") -> nx.Graph:
    """Convert a :class:`Graph` to networkx (undirected, weighted)."""
    out = nx.Graph()
    for i in range(graph.num_nodes):
        attributes = {feature_key: graph.features[i].copy()}
        if graph.labels is not None:
            attributes[label_key] = int(graph.labels[i])
        out.add_node(i, **attributes)
    coo = graph.adjacency.tocoo()
    for u, v, w in zip(coo.row, coo.col, coo.data):
        if u <= v and w != 0:
            out.add_edge(int(u), int(v), weight=float(w))
    return out
