"""Documentation checker: intra-repo links and CLI-snippet drift.

Grown out of ``tools/check_docs.py`` (PR 8) and folded into the
``repro check`` umbrella; the tool now delegates here.  Three rules
over ``README.md`` and every ``docs/*.md``:

- **DOC001** — a relative markdown link that resolves to nothing;
- **DOC002** — a ``#fragment`` into a markdown file that matches none
  of its headings (GitHub-style slugs);
- **DOC003** — a fenced ``repro <subcommand> ...`` snippet naming a
  subcommand the CLI parser does not know, or a ``--flag`` absent from
  that subcommand's help.  Both are resolved *in process* against
  :func:`repro.cli.build_parser` — no subprocess replay — so the check
  is fast enough to run on every ``repro check``.
"""

from __future__ import annotations

import argparse
import re
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.core import (
    AnalysisContext,
    Violation,
    register_checker,
)

LINK_RE = re.compile(r"\[([^\]]*)\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*$", re.MULTILINE)
FENCE_RE = re.compile(r"^```.*$")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


@dataclass(frozen=True)
class DocProblem:
    """One finding, anchored to a doc file and line."""

    path: Path
    line: int
    code: str
    message: str

    def render(self, root: Path) -> str:
        return f"{self.path.relative_to(root)}: {self.message}"


def doc_files(root: Path) -> list[Path]:
    files = [root / "README.md"]
    files += sorted((root / "docs").glob("*.md"))
    return [path for path in files if path.is_file()]


def github_slug(heading: str, seen: dict[str, int]) -> str:
    """GitHub's anchor slug: drop code ticks/punctuation, hyphenate."""
    text = heading.replace("`", "").strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    slug = re.sub(r" ", "-", text)
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def heading_slugs(path: Path) -> set[str]:
    seen: dict[str, int] = {}
    return {github_slug(match.group(2), seen)
            for match in HEADING_RE.finditer(path.read_text())}


def check_links(path: Path,
                slug_cache: dict[Path, set[str]]) -> list[DocProblem]:
    problems = []
    text = path.read_text()
    for match in LINK_RE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        target = match.group(2)
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        target, _, fragment = target.partition("#")
        resolved = path if not target else (path.parent / target).resolve()
        if not resolved.exists():
            problems.append(DocProblem(
                path, line, "DOC001",
                f"broken link -> {match.group(2)}"))
            continue
        if fragment and resolved.suffix == ".md":
            if resolved not in slug_cache:
                slug_cache[resolved] = heading_slugs(resolved)
            if fragment not in slug_cache[resolved]:
                problems.append(DocProblem(
                    path, line, "DOC002",
                    f"missing anchor -> {match.group(2)}"))
    return problems


def snippet_invocations(path: Path) -> list[tuple[int, str, list[str]]]:
    """(line, subcommand, [--flags]) per ``repro ...`` line in a fence."""
    invocations = []
    in_fence = False
    pending = ""
    pending_line = 0
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            pending = ""
            continue
        if not in_fence:
            continue
        start = pending_line if pending else lineno
        line = pending + line.strip()
        pending = ""
        if line.endswith("\\"):
            pending = line[:-1] + " "
            pending_line = start
            continue
        words = line.split()
        if not words or words[0] != "repro" or len(words) < 2:
            continue
        subcommand = words[1]
        if subcommand.startswith("-"):
            continue
        flags = [word.split("=")[0] for word in words[2:]
                 if re.fullmatch(r"--[A-Za-z0-9][\w\-]*(=\S*)?", word)]
        invocations.append((start, subcommand, flags))
    return invocations


def cli_help_texts() -> dict[str, str]:
    """subcommand -> its ``--help`` text, from the live parser."""
    from repro.cli import build_parser

    parser = build_parser()
    helps: dict[str, str] = {}
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, subparser in action.choices.items():
                helps[name] = subparser.format_help()
    return helps


def check_snippets(path: Path,
                   help_texts: dict[str, str]) -> list[DocProblem]:
    problems = []
    for line, subcommand, flags in snippet_invocations(path):
        help_text = help_texts.get(subcommand)
        if help_text is None:
            problems.append(DocProblem(
                path, line, "DOC003",
                f"snippet uses unknown subcommand 'repro {subcommand}'"))
            continue
        for flag in flags:
            if flag not in help_text:
                problems.append(DocProblem(
                    path, line, "DOC003",
                    f"'repro {subcommand}' snippet names {flag}, "
                    "not in its --help"))
    return problems


def run_docs_check(root: Path) -> tuple[list[DocProblem], dict]:
    """All doc problems plus summary stats (for the CLI tool's report)."""
    files = doc_files(root)
    slug_cache: dict[Path, set[str]] = {}
    help_texts = cli_help_texts()
    problems: list[DocProblem] = []
    links = snippets = 0
    for path in files:
        problems += check_links(path, slug_cache)
        links += len(LINK_RE.findall(path.read_text()))
        invocations = snippet_invocations(path)
        snippets += len(invocations)
        problems += check_snippets(path, help_texts)
    stats = {"files": len(files), "links": links, "snippets": snippets}
    return problems, stats


@register_checker(
    "docs",
    description=("markdown links/anchors resolve; documented 'repro' "
                 "snippets match the live CLI parser"))
def check_docs(context: AnalysisContext) -> list:
    problems, _stats = run_docs_check(context.root)
    return [Violation(
        checker="docs", code=problem.code,
        path=problem.path.relative_to(context.root).as_posix(),
        line=problem.line, message=problem.message)
        for problem in problems]
