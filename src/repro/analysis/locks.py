"""Lock-discipline checker.

Two passes over every class that owns a ``threading.Lock``/``RLock``:

**LOCK001 — guarded state mutated outside the lock.**  The guarded set
of a class is the union of attributes explicitly annotated ``# guarded
by _lock`` (comment on, or immediately above, the attribute's creation)
and attributes the code itself treats as guarded — mutated at least
once inside ``with self._lock:`` in a regular method.  Every other
mutation of a guarded attribute must also hold that lock.  Exempt:
``__init__``/``__post_init__`` (no concurrent reader can exist yet) and
helper methods whose docstring declares ``caller holds`` the lock — the
repo's documented convention for lock-hoisted helpers.

**LOCK002 — cross-module lock-acquisition cycles.**  Builds the graph
"class A calls into lock-owning class B while holding A's own lock"
across the threaded serving modules (``fleet.py``, ``gateway.py``,
``runtime.py``, ``telemetry/``) and flags any cycle: two classes that
each enter the other under their own lock can deadlock.

``threading.Condition(self._lock)`` attributes are treated as aliases
of the wrapped lock; a bare ``Condition()`` owns its own lock.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.core import (
    AnalysisContext,
    SourceFile,
    Violation,
    register_checker,
)

GUARDED_RE = re.compile(r"guarded by\s+`?`?(\w+)`?`?")
HOLDER_RE = re.compile(r"caller holds", re.IGNORECASE)

#: Methods on container attributes that mutate the container in place.
MUTATORS = frozenset({
    "append", "extend", "appendleft", "extendleft", "insert", "add",
    "pop", "popleft", "popitem", "remove", "discard", "clear",
    "update", "setdefault", "sort", "reverse",
})

#: Modules whose lock interactions feed the deadlock graph (LOCK002).
DEADLOCK_SCOPE = (
    "src/repro/serving/fleet.py",
    "src/repro/serving/gateway.py",
    "src/repro/serving/runtime.py",
    "src/repro/telemetry/",
)


@dataclass
class Mutation:
    attr: str
    line: int
    held: tuple  # innermost-last stack of held lock names
    method: str


@dataclass
class LockClass:
    """Lock-relevant facts about one class definition."""

    name: str
    source: SourceFile
    locks: set = field(default_factory=set)
    aliases: dict = field(default_factory=dict)  # condition attr -> lock
    guarded: dict = field(default_factory=dict)  # attr -> lock (explicit)
    mutations: list = field(default_factory=list)
    #: attr name -> class name, for ``self.attr = SomeLockOwningClass()``
    composed: dict = field(default_factory=dict)
    #: (lock, callee attr, line) calls made while holding ``lock``
    calls_under_lock: list = field(default_factory=list)
    holder_methods: set = field(default_factory=set)


def _is_threading_call(node, names) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in names
    if isinstance(func, ast.Name):
        return func.id in names
    return False


def _self_attr(node) -> str | None:
    """``self.<attr>`` -> attr name, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _docstring(node) -> str:
    return ast.get_docstring(node) or ""


def _scan_class(source: SourceFile, node: ast.ClassDef) -> LockClass:
    info = LockClass(name=node.name, source=source)

    # Class-level dataclass fields: ``_lock: Lock = field(default_factory=
    # threading.Lock)`` declares a lock; the annotation comment (if any)
    # can declare guarded attributes the same way ``__init__`` lines do.
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        target = statement.target
        if not isinstance(target, ast.Name):
            continue
        declared_lock = False
        if isinstance(statement.value, ast.Call):
            for keyword in statement.value.keywords:
                if (keyword.arg == "default_factory"
                        and _is_not_call_but_lock(keyword.value)):
                    declared_lock = True
        if declared_lock:
            info.locks.add(target.id)
        else:
            _note_guarded(info, source, target.id, statement.lineno)

    # Instance attributes assigned in any method (locks are created in
    # __init__/__post_init__ in this codebase, but scan all methods).
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if HOLDER_RE.search(_docstring(method)):
            info.holder_methods.add(method.name)
        for statement in ast.walk(method):
            if not isinstance(statement, ast.Assign):
                continue
            for target in statement.targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                value = statement.value
                if _is_threading_call(value, ("Lock", "RLock")):
                    info.locks.add(attr)
                elif _is_threading_call(value, ("Condition",)):
                    wrapped = (_self_attr(value.args[0])
                               if value.args else None)
                    if wrapped:
                        info.aliases[attr] = wrapped
                    else:
                        info.locks.add(attr)
                elif (isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)):
                    info.composed[attr] = value.func.id
                if method.name in ("__init__", "__post_init__"):
                    _note_guarded(info, source, attr, statement.lineno)
    return info


def _is_not_call_but_lock(node) -> bool:
    """default_factory value referencing threading.Lock/RLock/Condition."""
    if isinstance(node, ast.Attribute):
        return node.attr in ("Lock", "RLock", "Condition")
    if isinstance(node, ast.Name):
        return node.id in ("Lock", "RLock", "Condition")
    return False


def _note_guarded(info: LockClass, source: SourceFile, attr: str,
                  line: int) -> None:
    """Record an explicit ``guarded by <lock>`` comment annotation."""
    for candidate in (line, line - 1):
        match = GUARDED_RE.search(source.comment_on(candidate))
        if match:
            info.guarded[attr] = match.group(1)
            return


def _resolve_lock(info: LockClass, attr: str | None) -> str | None:
    if attr is None:
        return None
    if attr in info.locks:
        return attr
    return info.aliases.get(attr)


class _MethodWalker(ast.NodeVisitor):
    """Walk one method body tracking the lexically held lock set."""

    def __init__(self, info: LockClass, method_name: str) -> None:
        self.info = info
        self.method = method_name
        self.held: tuple = ()

    # -- lock acquisition ------------------------------------------------
    def _visit_with(self, node) -> None:
        acquired = []
        for item in node.items:
            lock = _resolve_lock(self.info,
                                 _self_attr(item.context_expr))
            if lock is not None:
                acquired.append(lock)
            elif item.context_expr is not None:
                self.visit(item.context_expr)
        self.held = self.held + tuple(acquired)
        for statement in node.body:
            self.visit(statement)
        if acquired:
            self.held = self.held[:-len(acquired)]

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    # -- nested defs keep the *lexical* held set (closures run later, but
    # the serving code only nests worker closures that re-acquire) -------
    def visit_FunctionDef(self, node) -> None:
        outer, self.held = self.held, ()
        self.generic_visit(node)
        self.held = outer

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef

    # -- mutations -------------------------------------------------------
    def _mutate(self, attr: str | None, line: int) -> None:
        if attr is None or _resolve_lock(self.info, attr):
            return
        self.info.mutations.append(
            Mutation(attr=attr, line=line,
                     held=tuple(self.held), method=self.method))

    def _target_attr(self, target) -> tuple[str | None, bool]:
        """(attr, is_container_mutation) for an assignment target."""
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            inner = _self_attr(target)
            if inner is not None and isinstance(target, ast.Attribute):
                return inner, False  # plain ``self.attr = ...``
            nested = _self_attr(getattr(target, "value", None))
            return nested, True  # ``self.attr[k] = ...`` etc.
        return None, False

    def visit_Assign(self, node) -> None:
        for target in node.targets:
            attr, _ = self._target_attr(target)
            self._mutate(attr, node.lineno)
        self.visit(node.value)

    def visit_AugAssign(self, node) -> None:
        attr, _ = self._target_attr(node.target)
        self._mutate(attr, node.lineno)
        self.visit(node.value)

    def visit_Delete(self, node) -> None:
        for target in node.targets:
            attr, _ = self._target_attr(target)
            self._mutate(attr, node.lineno)

    def visit_Call(self, node) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATORS:
            self._mutate(_self_attr(func.value), node.lineno)
        callee = _self_attr(func.value) if isinstance(
            func, ast.Attribute) else None
        if callee is not None and self.held:
            self.info.calls_under_lock.append(
                (self.held[-1], callee, node.lineno))
        self.generic_visit(node)


def _analyze_class(source: SourceFile,
                   node: ast.ClassDef) -> LockClass | None:
    info = _scan_class(source, node)
    if not info.locks:
        return None
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        walker = _MethodWalker(info, method.name)
        for statement in method.body:
            walker.visit(statement)
    return info


def _guarded_map(info: LockClass) -> dict:
    """attr -> guarding lock: explicit annotations + observed discipline."""
    guarded = dict(info.guarded)
    for mutation in info.mutations:
        if (mutation.attr in guarded
                or mutation.method in ("__init__", "__post_init__")
                or mutation.method in info.holder_methods
                or not mutation.held):
            continue
        guarded[mutation.attr] = mutation.held[-1]
    return guarded


def _check_mutations(info: LockClass) -> list:
    violations = []
    guarded = _guarded_map(info)
    for mutation in info.mutations:
        lock = guarded.get(mutation.attr)
        if (lock is None
                or lock in mutation.held
                or mutation.method in ("__init__", "__post_init__")
                or mutation.method in info.holder_methods
                or info.source.suppressed(mutation.line, "locks")):
            continue
        violations.append(Violation(
            checker="locks", code="LOCK001",
            path=info.source.relpath, line=mutation.line,
            message=(f"{info.name}.{mutation.attr} is guarded by "
                     f"{lock} but mutated in {mutation.method}() "
                     f"without holding it")))
    return violations


def _check_deadlocks(classes: list) -> list:
    """Cycle detection over 'calls into B while holding own lock'."""
    in_scope = {info.name: info for info in classes
                if any(info.source.relpath.startswith(prefix)
                       for prefix in DEADLOCK_SCOPE)}
    edges: dict[str, set[str]] = {name: set() for name in in_scope}
    sites: dict[tuple[str, str], tuple] = {}
    for info in in_scope.values():
        for _lock, callee_attr, line in info.calls_under_lock:
            target = info.composed.get(callee_attr)
            if target in in_scope and target != info.name:
                edges[info.name].add(target)
                sites.setdefault((info.name, target),
                                 (info.source, line))
    violations = []
    for start in sorted(edges):
        cycle = _find_cycle(edges, start)
        if cycle is None:
            continue
        source, line = sites[(cycle[0], cycle[1])]
        if source.suppressed(line, "locks"):
            continue
        violations.append(Violation(
            checker="locks", code="LOCK002",
            path=source.relpath, line=line,
            message=("potential deadlock cycle: "
                     + " -> ".join(cycle)
                     + " (each edge calls into the next class while "
                       "holding its own lock)")))
        break  # one report per cycle family keeps the output readable
    return violations


def _find_cycle(edges: dict, start: str) -> list | None:
    path: list[str] = []
    seen: set[str] = set()

    def walk(node: str) -> list | None:
        if node in path:
            return path[path.index(node):] + [node]
        if node in seen:
            return None
        seen.add(node)
        path.append(node)
        for succ in sorted(edges.get(node, ())):
            found = walk(succ)
            if found:
                return found
        path.pop()
        return None

    return walk(start)


@register_checker(
    "locks",
    description=("guarded attributes only mutated under their owning "
                 "lock; no cross-class lock-acquisition cycles"))
def check_locks(context: AnalysisContext) -> list:
    violations = []
    classes = []
    for source in context.files:
        for node in source.tree.body:
            if isinstance(node, ast.ClassDef):
                info = _analyze_class(source, node)
                if info is not None:
                    classes.append(info)
                    violations.extend(_check_mutations(info))
    violations.extend(_check_deadlocks(classes))
    return violations
