"""Registry-drift checker.

The condensation methods, reducers, routers, policies, … are all wired
through ``repro.registry.Registry`` instances and surfaced by ``repro
list``.  Two kinds of drift creep in as registries grow:

**REG001** — a registration without a usable description.  For
registrars that take a ``description=`` keyword it must be present and
(when a literal) non-empty; registrars without that keyword (e.g.
``@register_model``) document through the decorated object's docstring,
which must therefore exist.

**REG002** — a registry that ``repro list`` cannot reach: its global
name is never referenced by ``repro/cli.py``, so its entries are
invisible to the discovery surface the docs point users at.

Registrars are discovered structurally — any ``register_*`` function
whose body calls ``<GLOBAL>.register(...)`` — so new registries are
covered the day they are written.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.core import (
    AnalysisContext,
    Violation,
    register_checker,
)


@dataclass(frozen=True)
class Registrar:
    name: str
    registry: str  # global the registrar writes into
    takes_description: bool


def _find_registries(context: AnalysisContext) -> dict:
    """registry global name -> defining SourceFile."""
    registries = {}
    for source in context.files:
        for node in source.tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets = [t for t in node.targets
                           if isinstance(t, ast.Name)]
                value = node.value
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    targets = [node.target]
                value = node.value
            else:
                continue
            if not targets or not isinstance(value, ast.Call):
                continue
            func = value.func
            if isinstance(func, ast.Subscript):
                func = func.value
            if isinstance(func, ast.Name) and func.id == "Registry":
                for target in targets:
                    registries[target.id] = source
    return registries


def _find_registrars(context: AnalysisContext,
                     registries: dict) -> dict:
    """registrar function name -> Registrar."""
    registrars = {}
    for source in context.files:
        for node in ast.walk(source.tree):
            if (not isinstance(node, ast.FunctionDef)
                    or not node.name.startswith("register_")):
                continue
            registry = None
            for call in ast.walk(node):
                if (isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr == "register"
                        and isinstance(call.func.value, ast.Name)
                        and call.func.value.id in registries):
                    registry = call.func.value.id
            if registry is None:
                continue
            params = {arg.arg for arg in (node.args.args
                                          + node.args.kwonlyargs)}
            registrars[node.name] = Registrar(
                name=node.name, registry=registry,
                takes_description="description" in params)
    return registrars


def _decorator_call(decorator) -> ast.Call | None:
    return decorator if isinstance(decorator, ast.Call) else None


def _callable_name(node) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _description_of(call: ast.Call):
    """(present, literal_value_or_None) for the description keyword."""
    for keyword in call.keywords:
        if keyword.arg == "description":
            if isinstance(keyword.value, ast.Constant):
                return True, keyword.value.value
            return True, None  # an expression; trust it at runtime
    return False, None


def _check_usages(context: AnalysisContext, registrars: dict) -> list:
    violations = []
    for source in context.files:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                continue
            for decorator in node.decorator_list:
                call = _decorator_call(decorator)
                if call is None:
                    continue
                registrar = registrars.get(_callable_name(call.func))
                if registrar is None:
                    continue
                if source.suppressed(call.lineno, "registries"):
                    continue
                if registrar.takes_description:
                    present, literal = _description_of(call)
                    if present and (literal is None or str(literal).strip()):
                        continue
                    what = ("an empty description" if present
                            else "no description")
                    violations.append(Violation(
                        checker="registries", code="REG001",
                        path=source.relpath, line=call.lineno,
                        message=(f"@{registrar.name}(...) on {node.name} "
                                 f"carries {what}; 'repro list' would "
                                 "show a blank entry")))
                elif not ast.get_docstring(node):
                    violations.append(Violation(
                        checker="registries", code="REG001",
                        path=source.relpath, line=call.lineno,
                        message=(f"@{registrar.name}(...) on {node.name}: "
                                 "the registrar has no description= "
                                 "keyword, so the decorated object needs "
                                 "a docstring for 'repro list'")))
    return violations


def _check_reachability(context: AnalysisContext, registries: dict,
                        registrars: dict) -> list:
    cli = context.file("src/repro/cli.py")
    if cli is None:  # fixture trees have no CLI; nothing to reach
        return []
    used = {name for name in registries
            if re.search(rf"\b{re.escape(name)}\b", cli.text)}
    violations = []
    wired = {registrar.registry for registrar in registrars.values()}
    for name in sorted(wired - used):
        source = registries[name]
        line = 1
        for node in source.tree.body:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                target = (node.targets[0] if isinstance(node, ast.Assign)
                          else node.target)
                if isinstance(target, ast.Name) and target.id == name:
                    line = node.lineno
                    break
        if source.suppressed(line, "registries"):
            continue
        violations.append(Violation(
            checker="registries", code="REG002",
            path=source.relpath, line=line,
            message=(f"registry {name} is never referenced from "
                     "repro/cli.py, so its entries are unreachable "
                     "from 'repro list'")))
    return violations


@register_checker(
    "registries",
    description=("every @register_* entry has a description (or "
                 "docstring) and its registry is reachable from "
                 "'repro list'"))
def check_registries(context: AnalysisContext) -> list:
    registries = _find_registries(context)
    registrars = _find_registrars(context, registries)
    violations = _check_usages(context, registrars)
    violations.extend(
        _check_reachability(context, registries, registrars))
    return violations
