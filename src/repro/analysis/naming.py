"""Telemetry metric-name checker.

``telemetry/metrics.py`` documents the naming convention every metric
family must follow::

    repro_<component>_<what>[_total|_seconds]

with ``component`` one of ``gateway``, ``fleet``, ``runtime`` — plus
the shared cross-layer ``stage`` family.  This checker finds every
``registry.counter(...)``/``.gauge(...)``/``.histogram(...)`` call with
a literal name and enforces:

- **NAM001** name shape: ``repro_`` prefix, lowercase
  ``[a-z0-9_]`` words;
- **NAM002** known component as the second word;
- **NAM003** type suffix: counters end ``_total``, histograms end
  ``_seconds``, and gauges must NOT end in a reserved suffix
  (``_total``, ``_seconds``, ``_count``, ``_sum``, ``_bucket`` — the
  latter three collide with histogram exposition series).
"""

from __future__ import annotations

import ast
import re

from repro.analysis.core import (
    AnalysisContext,
    Violation,
    register_checker,
)

NAME_RE = re.compile(r"^repro_[a-z][a-z0-9]*(?:_[a-z0-9]+)+$")

COMPONENTS = frozenset({"gateway", "fleet", "runtime", "stage"})

RESERVED_GAUGE_SUFFIXES = ("_total", "_seconds", "_count", "_sum",
                           "_bucket")

FAMILY_METHODS = ("counter", "gauge", "histogram")


def _literal_name(call: ast.Call) -> str | None:
    if (call.args and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)):
        return call.args[0].value
    for keyword in call.keywords:
        if (keyword.arg == "name"
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, str)):
            return keyword.value.value
    return None


def _check_name(source, line: int, kind: str, name: str) -> list:
    if source.suppressed(line, "naming"):
        return []

    def violation(code: str, message: str) -> Violation:
        return Violation(checker="naming", code=code,
                         path=source.relpath, line=line,
                         message=message)

    if not NAME_RE.match(name):
        return [violation(
            "NAM001",
            f"metric {name!r} does not match "
            "repro_<component>_<what>[_total|_seconds]")]
    problems = []
    component = name.split("_")[1]
    if component not in COMPONENTS:
        problems.append(violation(
            "NAM002",
            f"metric {name!r} uses unknown component {component!r} "
            f"(known: {', '.join(sorted(COMPONENTS))})"))
    if kind == "counter" and not name.endswith("_total"):
        problems.append(violation(
            "NAM003", f"counter {name!r} must end with _total"))
    elif kind == "histogram" and not name.endswith("_seconds"):
        problems.append(violation(
            "NAM003", f"histogram {name!r} must end with _seconds"))
    elif kind == "gauge" and name.endswith(RESERVED_GAUGE_SUFFIXES):
        problems.append(violation(
            "NAM003",
            f"gauge {name!r} ends with a reserved suffix; _total/"
            "_seconds/_count/_sum/_bucket belong to counters and "
            "histogram exposition series"))
    return problems


@register_checker(
    "naming",
    description=("metric families match repro_<component>_<what>"
                 "[_total|_seconds] with a known component"))
def check_naming(context: AnalysisContext) -> list:
    violations = []
    for source in context.files:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (not isinstance(func, ast.Attribute)
                    or func.attr not in FAMILY_METHODS):
                continue
            name = _literal_name(node)
            if name is None:
                continue
            violations.extend(
                _check_name(source, node.lineno, func.attr, name))
    return violations
