"""Project-native static analysis (``repro check``).

See :mod:`repro.analysis.core` for the framework and ``docs/analysis.md``
for the checker catalog and annotation syntax.
"""

from repro.analysis.core import (
    ANALYSIS_REPORT_SCHEMA_VERSION,
    CHECKERS,
    AnalysisContext,
    AnalysisError,
    CheckerEntry,
    SourceFile,
    Violation,
    build_report,
    check_analysis_report_schema,
    format_baseline,
    load_baseline,
    register_checker,
    render_text_report,
    run_checkers,
)

__all__ = [
    "ANALYSIS_REPORT_SCHEMA_VERSION",
    "CHECKERS",
    "AnalysisContext",
    "AnalysisError",
    "CheckerEntry",
    "SourceFile",
    "Violation",
    "build_report",
    "check_analysis_report_schema",
    "format_baseline",
    "load_baseline",
    "register_checker",
    "render_text_report",
    "run_checkers",
]
