"""Parity/dtype-discipline checker.

The serving stack's headline guarantee is bitwise parity between the
frozen float64 path and direct in-process serving; reduced precision is
legal only inside the sanctioned quantization layer.  Two rules:

**PAR001** — in the parity-critical modules (``serving/prepared.py``,
``graph/stream.py``, ``serving/protocol.py``), any *literal* narrowing
dtype (``np.float32``/``float16``/``int8``/``int16``, as an attribute
or a string, in ``.astype(...)`` or a ``dtype=`` keyword) is flagged
unless the enclosing function is marked as the precision layer with a
``# repro-check: precision-layer <reason>`` comment on its ``def``
line.  Dtypes carried in variables (``self._dtype``) are the sanctioned
way to thread precision through — the checker only hunts hard-coded
narrowing.

**PAR002** — ``time.time()`` anywhere under ``serving/`` or
``telemetry/``: wall-clock time can step backwards under NTP and has
coarse resolution, so every latency measurement must use
``time.perf_counter()`` (``time.time()`` is fine for *timestamps*, but
none of the latency-path modules need one; annotate with
``# repro-check: parity <reason>`` if one ever does).
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    AnalysisContext,
    SourceFile,
    Violation,
    register_checker,
)

PARITY_MODULES = (
    "src/repro/serving/prepared.py",
    "src/repro/graph/stream.py",
    "src/repro/serving/protocol.py",
)

LATENCY_PREFIXES = ("src/repro/serving/", "src/repro/telemetry/")

NARROW_DTYPES = frozenset({"float32", "float16", "int8", "int16"})

PRECISION_MARKER = "precision-layer"


def _narrow_literal(node) -> str | None:
    """'float32' if the node is a literal narrowing dtype, else None."""
    if isinstance(node, ast.Attribute) and node.attr in NARROW_DTYPES:
        return node.attr
    if isinstance(node, ast.Name) and node.id in NARROW_DTYPES:
        return node.id
    if (isinstance(node, ast.Constant) and isinstance(node.value, str)
            and node.value in NARROW_DTYPES):
        return node.value
    return None


def _precision_layer_functions(source: SourceFile) -> list:
    """Functions whose ``def`` line carries the precision-layer marker."""
    sanctioned = []
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        comment = source.comment_on(node.lineno)
        at = comment.find(PRECISION_MARKER)
        if at >= 0 and comment[at + len(PRECISION_MARKER):].strip():
            sanctioned.append(node)
    return sanctioned


def _check_dtypes(source: SourceFile) -> list:
    violations = []
    sanctioned = _precision_layer_functions(source)

    def in_sanctioned(line: int) -> bool:
        return any(fn.lineno <= line <= fn.end_lineno for fn in sanctioned)

    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        found: str | None = None
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in ("astype", "asarray", "array",
                                       "zeros", "empty", "full", "ones")):
            for arg in node.args:
                found = found or _narrow_literal(arg)
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                found = found or _narrow_literal(keyword.value)
        if found is None:
            continue
        if in_sanctioned(node.lineno):
            continue
        if source.suppressed(node.lineno, "parity"):
            continue
        violations.append(Violation(
            checker="parity", code="PAR001",
            path=source.relpath, line=node.lineno,
            message=(f"literal dtype narrowing to {found} outside the "
                     "sanctioned precision layer (mark the function "
                     "'# repro-check: precision-layer <reason>' if it "
                     "IS the precision layer)")))
    return violations


def _check_clocks(source: SourceFile) -> list:
    violations = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_time = (isinstance(func, ast.Attribute) and func.attr == "time"
                   and isinstance(func.value, ast.Name)
                   and func.value.id == "time")
        if not is_time:
            continue
        if source.suppressed(node.lineno, "parity"):
            continue
        violations.append(Violation(
            checker="parity", code="PAR002",
            path=source.relpath, line=node.lineno,
            message=("time.time() in a latency path; use "
                     "time.perf_counter() (monotonic, high-resolution)")))
    return violations


@register_checker(
    "parity",
    description=("no literal dtype narrowing outside the precision "
                 "layer; no time.time() in latency paths"))
def check_parity(context: AnalysisContext) -> list:
    violations = []
    for source in context.files:
        if source.relpath in PARITY_MODULES:
            violations.extend(_check_dtypes(source))
        if source.relpath.startswith(LATENCY_PREFIXES):
            violations.extend(_check_clocks(source))
    return violations
