"""Framework for the project-native static-analysis pass (``repro check``).

Generic linters cannot see the conventions the serving stack's
correctness rests on — which attributes a ``_lock`` guards, that every
intentional ``raise`` derives from :class:`~repro.errors.ReproError`,
that parity-critical modules must not narrow dtypes, that metric names
follow ``repro_<component>_<what>[_total|_seconds]``.  This package
machine-checks them: each *checker* is a small AST pass registered in
:data:`CHECKERS` (the same decorator-registry pattern the reducers and
routers use) that receives one shared :class:`AnalysisContext` and
returns :class:`Violation`\\ s.

Suppressions are explicit and carry a reason:

- an inline ``# repro-check: <checker> <reason>`` comment on the
  offending line waives that line for that checker;
- a *baseline file* (``repro check --baseline``) waives known legacy
  findings by stable key, so the gate can be adopted before the last
  violation is fixed and ratchets from there.

The CLI surface is ``repro check`` (text or JSON report, per-checker
enable/disable); CI runs it as a hard gate.  See ``docs/analysis.md``.
"""

from __future__ import annotations

import ast
import io
import json
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.registry import Registry

__all__ = [
    "AnalysisError",
    "Violation",
    "SourceFile",
    "AnalysisContext",
    "CheckerEntry",
    "CHECKERS",
    "register_checker",
    "run_checkers",
    "load_baseline",
    "format_baseline",
    "build_report",
    "render_text_report",
    "check_analysis_report_schema",
    "ANALYSIS_REPORT_SCHEMA_VERSION",
]

ANALYSIS_REPORT_SCHEMA_VERSION = 1

#: Inline-suppression marker: ``# repro-check: <checker> <reason>``.
SUPPRESS_MARKER = "repro-check:"


class AnalysisError(ReproError, ValueError):
    """The static-analysis pass was misconfigured or an input is invalid."""


@dataclass(frozen=True)
class Violation:
    """One finding of one checker, anchored to a source line."""

    checker: str
    code: str  # stable short id, e.g. "LOCK001"
    path: str  # repo-relative posix path
    line: int
    message: str

    def key(self) -> str:
        """Baseline identity: stable across unrelated line-number drift."""
        return f"{self.checker}::{self.path}::{self.code}::{self.message}"

    def as_dict(self) -> dict:
        return {"checker": self.checker, "code": self.code,
                "path": self.path, "line": self.line,
                "message": self.message}

    def render(self) -> str:
        return (f"{self.path}:{self.line}: {self.code} "
                f"[{self.checker}] {self.message}")


class SourceFile:
    """One parsed Python source: AST plus the comments AST throws away."""

    def __init__(self, root: Path, path: Path) -> None:
        self.path = path
        self.relpath = path.relative_to(root).as_posix()
        self.text = path.read_text()
        try:
            self.tree = ast.parse(self.text, filename=str(path))
        except SyntaxError as exc:
            raise AnalysisError(
                f"cannot parse {self.relpath}: {exc}") from exc
        self.comments: dict[int, str] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    self.comments[token.start[0]] = token.string
        except tokenize.TokenError:
            pass  # comments stay best-effort; the AST parsed fine

    def comment_on(self, line: int) -> str:
        return self.comments.get(line, "")

    def suppressed(self, line: int, checker: str) -> bool:
        """True when ``# repro-check: <checker> <reason>`` covers ``line``.

        The marker may sit on the flagged line itself or on the line
        directly above it (for statements too long to share a line).
        The reason is mandatory: a bare marker does not suppress, the
        same way a broad except needs a justification, not just a tag.
        """
        for candidate in (line, line - 1):
            comment = self.comments.get(candidate, "")
            marker = comment.find(SUPPRESS_MARKER)
            if marker < 0:
                continue
            rest = comment[marker + len(SUPPRESS_MARKER):].strip()
            words = rest.split(None, 1)
            if (words and words[0] == checker and len(words) > 1
                    and words[1].strip()):
                return True
        return False


@dataclass
class AnalysisContext:
    """Everything a checker may need, computed once per run."""

    root: Path
    files: list[SourceFile] = field(default_factory=list)
    #: Names of every class deriving (transitively) from ``ReproError``.
    repro_error_names: set[str] = field(default_factory=set)

    @classmethod
    def collect(cls, root: str | Path,
                package: str = "src/repro") -> "AnalysisContext":
        root = Path(root).resolve()
        package_dir = root / package
        if not package_dir.is_dir():
            raise AnalysisError(
                f"no package directory {package!r} under {root}")
        files = [SourceFile(root, path)
                 for path in sorted(package_dir.rglob("*.py"))
                 if "__pycache__" not in path.parts]
        context = cls(root=root, files=files)
        context.repro_error_names = _collect_error_hierarchy(files)
        return context

    def file(self, relpath: str) -> SourceFile | None:
        for source in self.files:
            if source.relpath == relpath:
                return source
        return None


def _collect_error_hierarchy(files: list[SourceFile]) -> set[str]:
    """Transitive subclasses of ``ReproError`` across the whole package.

    Bases are resolved by (last) name, which is exact for this codebase:
    error classes are always referenced by their imported name.
    """
    bases_by_class: dict[str, set[str]] = {}
    for source in files:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                names = set()
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        names.add(base.id)
                    elif isinstance(base, ast.Attribute):
                        names.add(base.attr)
                bases_by_class.setdefault(node.name, set()).update(names)
    known = {"ReproError"}
    changed = True
    while changed:
        changed = False
        for name, bases in bases_by_class.items():
            if name not in known and bases & known:
                known.add(name)
                changed = True
    return known


# ----------------------------------------------------------------------
# Checker registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CheckerEntry:
    """A registered checker: ``run(context) -> list[Violation]``."""

    name: str
    factory: object  # the checker callable; named ``factory`` so the
    # generic ``repro list`` entry help can introspect it uniformly
    description: str = ""

    def run(self, context: AnalysisContext) -> list:
        return list(self.factory(context))


CHECKERS: Registry[CheckerEntry] = Registry("static-analysis checker")


def register_checker(name: str, *, description: str = "",
                     overwrite: bool = False):
    """Decorator registering ``fn(context) -> list[Violation]``."""

    def wrap(fn):
        CHECKERS.register(
            name, CheckerEntry(name=name.lower(), factory=fn,
                               description=description),
            overwrite=overwrite)
        return fn

    return wrap


def _load_all_checkers() -> None:
    """Import every checker module so CHECKERS is fully populated."""
    from repro.analysis import (  # noqa: F401 — imported for registration
        docs,
        errors_check,
        locks,
        naming,
        parity,
        registries,
    )


def selected_checkers(only: list[str] | None = None,
                      disable: list[str] | None = None) -> list[CheckerEntry]:
    """Resolve the checker set a run covers (validates the names)."""
    _load_all_checkers()
    names = list(CHECKERS.keys())
    if only:
        for name in only:
            CHECKERS.get(name)  # raises with the available keys
        names = [name for name in names if name in {n.lower() for n in only}]
    if disable:
        for name in disable:
            CHECKERS.get(name)
        names = [name for name in names
                 if name not in {n.lower() for n in disable}]
    return [CHECKERS.get(name) for name in names]


def run_checkers(root: str | Path, *, only: list[str] | None = None,
                 disable: list[str] | None = None,
                 ) -> tuple[list[Violation], dict, AnalysisContext]:
    """Run the selected checkers; returns ``(violations, per_checker, ctx)``.

    ``per_checker`` maps checker name → finding count (before any
    baseline suppression), in registry order.
    """
    entries = selected_checkers(only, disable)
    context = AnalysisContext.collect(root)
    violations: list[Violation] = []
    per_checker: dict[str, int] = {}
    for entry in entries:
        found = entry.run(context)
        per_checker[entry.name] = len(found)
        violations.extend(found)
    violations.sort(key=lambda v: (v.path, v.line, v.checker, v.code))
    return violations, per_checker, context


# ----------------------------------------------------------------------
# Baseline files
# ----------------------------------------------------------------------
def load_baseline(path: str | Path) -> set[str]:
    """Read a baseline file into its set of suppression keys."""
    target = Path(path)
    try:
        payload = json.loads(target.read_text())
    except FileNotFoundError:
        raise AnalysisError(f"baseline file {target} does not exist")
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"baseline file {target} is not JSON: {exc}")
    if (not isinstance(payload, dict)
            or not isinstance(payload.get("entries"), list)):
        raise AnalysisError(
            f"baseline file {target} must be "
            '{"version": 1, "entries": [...]}')
    return {str(entry) for entry in payload["entries"]}


def format_baseline(violations: list[Violation]) -> str:
    """Serialize findings as a baseline file (``--write-baseline``)."""
    entries = sorted({violation.key() for violation in violations})
    return json.dumps({"version": 1, "entries": entries}, indent=2) + "\n"


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def build_report(violations: list[Violation], per_checker: dict,
                 context: AnalysisContext,
                 baseline: set[str] | None = None) -> dict:
    """The JSON report ``repro check --format json`` emits (CI artifact)."""
    baseline = baseline or set()
    active = [v for v in violations if v.key() not in baseline]
    suppressed = len(violations) - len(active)
    _load_all_checkers()
    return {
        "kind": "analysis-report",
        "schema_version": ANALYSIS_REPORT_SCHEMA_VERSION,
        "files_scanned": len(context.files),
        "checkers": {name: {
            "description": CHECKERS.get(name).description,
            "violations": count,
        } for name, count in per_checker.items()},
        "violations": [v.as_dict() for v in active],
        "suppressed": suppressed,
        "clean": not active,
    }


def render_text_report(report: dict) -> str:
    """Human-readable report body (one line per finding + a summary)."""
    lines = [Violation(**entry).render()
             for entry in report["violations"]]
    counts = ", ".join(f"{name}={info['violations']}"
                       for name, info in report["checkers"].items())
    status = "clean" if report["clean"] else (
        f"{len(report['violations'])} violation(s)")
    lines.append(f"repro check: {status} ({counts}; "
                 f"{report['suppressed']} baseline-suppressed, "
                 f"{report['files_scanned']} files)")
    return "\n".join(lines)


def check_analysis_report_schema(result: dict) -> None:
    """Validate a ``repro check`` JSON report (``repro bench-schema``)."""
    from repro.utils.reports import require_keys

    if not isinstance(result, dict):
        raise AnalysisError("analysis report must be a JSON object")
    require_keys(result, ("kind", "schema_version", "files_scanned",
                          "checkers", "violations", "suppressed", "clean"),
                 "analysis report", AnalysisError)
    if result["kind"] != "analysis-report":
        raise AnalysisError(
            f"analysis report kind must be 'analysis-report', "
            f"got {result['kind']!r}")
    if result["schema_version"] != ANALYSIS_REPORT_SCHEMA_VERSION:
        raise AnalysisError(
            f"analysis report schema_version must be "
            f"{ANALYSIS_REPORT_SCHEMA_VERSION}, "
            f"got {result['schema_version']!r}")
    if not isinstance(result["checkers"], dict) or not result["checkers"]:
        raise AnalysisError("analysis report 'checkers' must be a "
                            "non-empty object")
    for name, info in result["checkers"].items():
        require_keys(info, ("description", "violations"),
                     f"analysis report checker {name!r}", AnalysisError)
    if not isinstance(result["violations"], list):
        raise AnalysisError("analysis report 'violations' must be a list")
    for entry in result["violations"]:
        require_keys(entry, ("checker", "code", "path", "line", "message"),
                     "analysis report violation", AnalysisError)
    if result["clean"] != (not result["violations"]):
        raise AnalysisError(
            "analysis report 'clean' disagrees with its violation list")
