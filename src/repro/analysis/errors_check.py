"""Error-discipline checker.

**ERR001** — every ``raise`` under ``src/repro`` must construct a
:class:`~repro.errors.ReproError` subclass (resolved project-wide, so
``TelemetryError`` defined in ``telemetry/metrics.py`` counts) or
re-raise.  Allowed without annotation:

- bare ``raise`` and re-raising a stored exception object
  (``raise self._error``) — the original type is preserved;
- ``NotImplementedError``, ``AssertionError``, ``SystemExit`` — these
  express contract/CLI semantics, not recoverable repro failures;
- ``KeyError``/``IndexError`` inside ``__getitem__``/``__missing__``
  and ``AttributeError`` inside ``__getattr__``-family methods, where
  the *protocol* dictates the exception type.

**ERR002** — a bare ``except:`` or broad ``except Exception`` must
either re-raise (cleanup-and-reraise: the handler body contains a bare
``raise``) or carry a justification comment — the repo's existing
``# noqa: BLE001 — <reason>`` idiom or ``# broad-except: <reason>``.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    AnalysisContext,
    SourceFile,
    Violation,
    register_checker,
)

#: Exceptions whose semantics are not "a repro operation failed".
ALWAYS_ALLOWED = frozenset({
    "NotImplementedError", "AssertionError", "SystemExit",
})

#: method name -> exception types the protocol itself mandates.
PROTOCOL_ALLOWED = {
    "__getitem__": frozenset({"KeyError", "IndexError"}),
    "__missing__": frozenset({"KeyError"}),
    "__getattr__": frozenset({"AttributeError"}),
    "__getattribute__": frozenset({"AttributeError"}),
    "__setattr__": frozenset({"AttributeError"}),
    "__delattr__": frozenset({"AttributeError"}),
}

BROAD_TYPES = frozenset({"Exception", "BaseException"})


def _exception_name(node) -> str | None:
    """Callable name of ``raise <name>(...)``, by last path segment."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _has_justification(source: SourceFile, line: int) -> bool:
    comment = source.comment_on(line)
    for marker in ("noqa: BLE001", "broad-except:"):
        at = comment.find(marker)
        if at >= 0 and comment[at + len(marker):].strip(" -—:"):
            return True
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


class _Walker(ast.NodeVisitor):
    def __init__(self, source: SourceFile, error_names: set) -> None:
        self.source = source
        self.error_names = error_names
        self.function_stack: list[str] = []
        self.violations: list = []

    def _visit_function(self, node) -> None:
        self.function_stack.append(node.name)
        self.generic_visit(node)
        self.function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Raise(self, node) -> None:
        self.generic_visit(node)
        if node.exc is None:  # bare re-raise
            return
        if not isinstance(node.exc, ast.Call):
            return  # re-raising a stored exception object
        name = _exception_name(node.exc.func)
        if name is None or name in self.error_names:
            return
        if name in ALWAYS_ALLOWED:
            return
        method = self.function_stack[-1] if self.function_stack else ""
        if name in PROTOCOL_ALLOWED.get(method, ()):
            return
        if self.source.suppressed(node.lineno, "errors"):
            return
        self.violations.append(Violation(
            checker="errors", code="ERR001",
            path=self.source.relpath, line=node.lineno,
            message=(f"raise {name}(...) is not a ReproError subclass; "
                     "raise a repro.errors type (or annotate "
                     "'# repro-check: errors <reason>')")))

    def visit_ExceptHandler(self, node) -> None:
        self.generic_visit(node)
        broad = node.type is None or (
            isinstance(node.type, ast.Name) and node.type.id in BROAD_TYPES)
        if not broad:
            return
        if _reraises(node) or _has_justification(self.source, node.lineno):
            return
        if self.source.suppressed(node.lineno, "errors"):
            return
        label = ("bare except:" if node.type is None
                 else f"except {node.type.id}")
        self.violations.append(Violation(
            checker="errors", code="ERR002",
            path=self.source.relpath, line=node.lineno,
            message=(f"{label} swallows everything without re-raising; "
                     "narrow the type or justify with "
                     "'# noqa: BLE001 — <reason>'")))


@register_checker(
    "errors",
    description=("every raise constructs a ReproError subclass or "
                 "re-raises; broad excepts re-raise or carry a reason"))
def check_errors(context: AnalysisContext) -> list:
    violations = []
    for source in context.files:
        walker = _Walker(source, context.repro_error_names)
        walker.visit(source.tree)
        violations.extend(walker.violations)
    return violations
