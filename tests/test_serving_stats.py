"""Latency accounting edge cases: concurrency, windowing, percentiles."""

from __future__ import annotations

import math
import threading

import numpy as np
import pytest

from repro.inference.benchmark import latency_percentiles
from repro.serving.stats import (
    DEFAULT_WINDOW,
    LatencyAccounting,
    RequestRecord,
)


def _record(latency: float, *, nodes: int = 1) -> RequestRecord:
    return RequestRecord(num_nodes=nodes, queue_seconds=0.0,
                         compute_seconds=latency, batch_size=1)


class TestConcurrentAccounting:
    def test_record_during_summary_stays_consistent(self):
        """Producers appending while another thread snapshots.

        The summary must never observe a half-applied batch: every
        snapshot's request count has to be a multiple of the batch size,
        and the final totals must be exact.
        """
        accounting = LatencyAccounting()
        batch = [_record(0.01) for _ in range(5)]
        rounds = 200
        errors: list[Exception] = []

        def producer():
            try:
                for i in range(rounds):
                    accounting.observe_batch(list(batch), float(i),
                                             float(i) + 0.5)
                    accounting.observe_rejection()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=producer) for _ in range(3)]
        for thread in threads:
            thread.start()
        snapshots = [accounting.summary() for _ in range(300)]
        for thread in threads:
            thread.join()
        assert not errors
        for stats in snapshots:
            assert stats.requests % len(batch) == 0
            assert stats.requests == stats.batches * len(batch)
        final = accounting.summary()
        assert final.requests == 3 * rounds * len(batch)
        assert final.batches == 3 * rounds
        assert final.rejected == 3 * rounds

    def test_concurrent_rejections_and_failures_are_exact(self):
        accounting = LatencyAccounting()

        def worker():
            for _ in range(1000):
                accounting.observe_rejection()
                accounting.observe_failure()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = accounting.summary()
        assert stats.rejected == 4000
        assert stats.failed == 4000


class TestSlidingWindow:
    def test_eviction_exactly_at_capacity(self):
        """The window keeps exactly ``window`` records, evicting oldest.

        Fill to precisely the capacity (no eviction yet), then push one
        more batch: the first record must fall out of the percentile
        window while the lifetime counters keep counting.
        """
        accounting = LatencyAccounting(window=8)
        # A pathological outlier first: visible while the window is at
        # capacity, gone the moment one more record lands.
        accounting.observe_batch([_record(100.0)], 0.0, 1.0)
        accounting.observe_batch([_record(0.001) for _ in range(7)],
                                 1.0, 2.0)
        assert len(accounting.records) == 8
        at_capacity = accounting.summary()
        assert at_capacity.latency_p99 > 1.0  # outlier still in window
        accounting.observe_batch([_record(0.001)], 2.0, 3.0)
        assert len(accounting.records) == 8  # capacity, not 9
        evicted = accounting.summary()
        assert evicted.requests == 9  # lifetime counter unaffected
        assert evicted.latency_p99 < 1.0  # outlier evicted
        assert evicted.latency_mean == pytest.approx(0.001)

    def test_default_window_matches_module_constant(self):
        accounting = LatencyAccounting()
        assert accounting.records.maxlen == DEFAULT_WINDOW

    def test_window_of_one_keeps_only_last(self):
        accounting = LatencyAccounting(window=1)
        accounting.observe_batch([_record(5.0), _record(0.25)], 0.0, 1.0)
        stats = accounting.summary()
        assert stats.requests == 2
        assert stats.latency_mean == pytest.approx(0.25)


class TestPercentileInterpolation:
    @pytest.mark.parametrize("samples", [
        [0.1],                                  # single sample
        [0.1, 0.2],                             # interpolation between two
        [1e-9, 1e-9, 1e-9, 10.0],               # duplicate-heavy + outlier
        [float(i) for i in range(100, 0, -1)],  # descending, unsorted
        list(np.geomspace(1e-6, 10.0, 37)),     # log-spread, odd count
        [0.5] * 50,                             # fully degenerate
    ])
    def test_matches_numpy_percentile(self, samples):
        """The shared helper must agree with numpy's linear quantiles."""
        accounting = LatencyAccounting()
        accounting.observe_batch([_record(s) for s in samples], 0.0, 1.0)
        stats = accounting.summary()
        for attr, q in (("latency_p50", 50), ("latency_p95", 95),
                        ("latency_p99", 99)):
            assert getattr(stats, attr) == pytest.approx(
                float(np.percentile(samples, q)), rel=1e-12)

    def test_helper_and_accounting_share_semantics(self):
        samples = [0.003, 0.001, 0.4, 0.002, 0.1]
        accounting = LatencyAccounting()
        accounting.observe_batch([_record(s) for s in samples], 0.0, 1.0)
        stats = accounting.summary()
        tail = latency_percentiles(samples)
        assert stats.latency_p50 == tail["p50"]
        assert stats.latency_p95 == tail["p95"]
        assert stats.latency_p99 == tail["p99"]

    def test_idle_summary_is_nan_not_zero(self):
        stats = LatencyAccounting().summary()
        assert math.isnan(stats.latency_p50)
        assert math.isnan(stats.latency_mean)
        payload = stats.as_dict()
        assert payload["latency_p50_ms"] is None
        assert payload["latency_mean_ms"] is None
        assert payload["requests"] == 0
