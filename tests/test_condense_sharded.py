"""Sharded condensation: apportionment, merging, parity, and the benchmark."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.condense import CondensedGraph
from repro.condense.bench import (
    check_condense_benchmark_schema,
    gate_condense_benchmark,
    run_condense_scaling_benchmark,
)
from repro.condense.sharded import (
    ShardedReducer,
    apportion_budget,
    assign_support,
    coalesce_shards,
    merge_condensed,
)
from repro.errors import CondensationError
from repro.registry import make_reducer

# Fast inner configuration shared by every MCond-based test here.
FAST_MCOND = {"outer_loops": 1, "match_steps": 2, "mapping_steps": 3,
              "relay_steps": 1, "adjacency_pretrain_steps": 10}


def _assert_bit_identical(a: CondensedGraph, b: CondensedGraph):
    assert np.array_equal(a.adjacency, b.adjacency)
    assert np.array_equal(a.features, b.features)
    assert np.array_equal(a.labels, b.labels)
    assert (a.mapping is None) == (b.mapping is None)
    if a.mapping is not None:
        assert np.array_equal(a.mapping.toarray(), b.mapping.toarray())
    assert a.method == b.method


class TestApportionBudget:
    def test_exact_and_proportional(self):
        allocation = apportion_budget(np.array([30, 10]),
                                      np.array([100, 100]), 20, 2)
        assert allocation.sum() == 20
        assert allocation[0] > allocation[1]
        assert allocation.min() >= 2

    def test_floor_respected_for_starved_shards(self):
        allocation = apportion_budget(np.array([99, 1]),
                                      np.array([50, 50]), 10, 3)
        assert allocation.tolist() == [7, 3]

    def test_cap_at_shard_size(self):
        allocation = apportion_budget(np.array([10, 10]),
                                      np.array([4, 100]), 20, 2)
        assert allocation[0] <= 3
        assert allocation.sum() == 20

    def test_budget_below_floor_raises(self):
        with pytest.raises(CondensationError, match="fewer shards"):
            apportion_budget(np.array([5, 5]), np.array([50, 50]), 3, 2)

    def test_budget_above_capacity_raises(self):
        with pytest.raises(CondensationError, match="capacity"):
            apportion_budget(np.array([5, 5]), np.array([3, 3]), 5, 1)

    def test_no_labeled_nodes_raises(self):
        with pytest.raises(CondensationError, match="labeled"):
            apportion_budget(np.array([0, 0]), np.array([50, 50]), 10, 2)

    def test_single_shard_gets_everything(self):
        assert apportion_budget(np.array([7]), np.array([50]), 13,
                                3).tolist() == [13]


class TestSingleClassShardApportionment:
    """Regression: a shard whose labeled nodes are all one class must get
    a floor of 1, not one per *global* class — the global floor can
    exceed the budget such a shard (or the whole run) was ever granted."""

    def test_per_shard_floor_array(self):
        # 3 global classes, shard 1 single-class: old floor 3+3=6 > 5
        allocation = apportion_budget(np.array([20, 4]), np.array([50, 40]),
                                      5, np.array([3, 1]))
        assert allocation.sum() == 5
        assert allocation[0] >= 3
        assert allocation[1] >= 1

    def test_scalar_floor_still_supported(self):
        allocation = apportion_budget(np.array([10, 10]),
                                      np.array([50, 50]), 8, 2)
        assert allocation.sum() == 8
        assert allocation.min() >= 2

    def test_floor_sum_over_budget_raises(self):
        with pytest.raises(CondensationError, match="fewer shards"):
            apportion_budget(np.array([5, 5]), np.array([50, 50]), 3,
                             np.array([3, 1]))

    def test_single_class_shard_end_to_end(self, tiny_split):
        """A partition that isolates one class in its own shard condenses
        with a budget below shards * num_classes."""
        from repro.graph.partition import register_partitioner

        labels = tiny_split.original.labels
        lone = int(labels[0])

        @register_partitioner("single-class-test", overwrite=True,
                              description="test-only: isolate one class")
        def _single_class(graph, shards, seed=0):
            assert shards == 2
            members = np.flatnonzero(graph.labels == lone)
            rest = np.flatnonzero(graph.labels != lone)
            return [rest, members]

        reducer = make_reducer("sharded", inner="random", shards=2,
                               partitioner="single-class-test", seed=0)
        # 4 < 2 shards * 3 classes: the old global floor raised here
        condensed = reducer.reduce(tiny_split, 4)
        assert condensed.num_nodes == 4
        plan = reducer.last_plan
        assert len(plan) == 2
        single = [entry for entry in plan
                  if entry["shard"] == 1][0]
        assert single["budget"] >= 1
        # the single-class shard only carries its own class
        assert set(np.unique(condensed.labels)) <= set(np.unique(labels))


class TestCoalesceShards:
    labeled = np.zeros(12, dtype=bool)
    labeled[[0, 1, 6, 7]] = True

    def test_empty_shard_folded_into_smallest(self):
        shards = [np.arange(0, 6), np.arange(6, 12), np.empty(0, np.int64)]
        merged = coalesce_shards(shards, self.labeled, min_size=2)
        assert len(merged) == 2
        np.testing.assert_array_equal(np.sort(np.concatenate(merged)),
                                      np.arange(12))

    def test_singleton_shard_folded(self):
        shards = [np.arange(0, 6), np.arange(7, 12), np.array([6])]
        merged = coalesce_shards(shards, self.labeled, min_size=2)
        assert len(merged) == 2
        assert all(s.size > 2 for s in merged)

    def test_unlabeled_shard_folded(self):
        shards = [np.arange(0, 4), np.arange(4, 8), np.arange(8, 12)]
        labeled = np.zeros(12, dtype=bool)
        labeled[[0, 5]] = True               # shard 3 has no labeled nodes
        merged = coalesce_shards(shards, labeled, min_size=2)
        assert len(merged) == 2

    def test_all_invalid_collapses_to_one(self):
        shards = [np.array([0]), np.array([1]), np.arange(2, 12)]
        labeled = np.zeros(12, dtype=bool)
        labeled[0] = True                    # only the singleton is labeled
        merged = coalesce_shards(shards, labeled, min_size=10)
        assert len(merged) == 1
        assert merged[0].size == 12

    def test_unshardable_graph_raises(self):
        with pytest.raises(CondensationError, match="cannot be sharded"):
            coalesce_shards([np.arange(3)], np.zeros(3, dtype=bool),
                            min_size=2)


class TestAssignSupport:
    def test_single_shard_preserves_val_order(self, tiny_split):
        supports = assign_support(tiny_split, [np.arange(
            tiny_split.original.num_nodes)])
        assert len(supports) == 1
        np.testing.assert_array_equal(supports[0], tiny_split.val_idx)

    def test_partition_of_val_nodes(self, tiny_split):
        n = tiny_split.original.num_nodes
        shards = [np.arange(0, n // 2), np.arange(n // 2, n)]
        supports = assign_support(tiny_split, shards)
        combined = np.concatenate(supports)
        assert combined.size == tiny_split.val_idx.size
        assert np.array_equal(np.sort(combined), np.sort(tiny_split.val_idx))
        assert all(s.size > 0 for s in supports)

    def test_empty_val_set(self, tiny_split):
        from repro.graph.datasets import InductiveSplit
        bare = InductiveSplit(tiny_split.full, tiny_split.train_idx,
                              np.empty(0, np.int64), tiny_split.test_idx,
                              labeled_idx=tiny_split.labeled_idx)
        supports = assign_support(bare, [np.arange(3), np.arange(3, 6)])
        assert all(s.size == 0 for s in supports)


class TestMergeCondensed:
    def _parts(self, rng):
        left = CondensedGraph(
            adjacency=np.array([[0.0, 1.0], [1.0, 0.0]]),
            features=rng.normal(size=(2, 3)), labels=np.array([0, 1]),
            mapping=sp.csr_matrix(np.array([[1.0, 0.0], [0.0, 1.0],
                                            [0.5, 0.5]])),
            method="random")
        right = CondensedGraph(
            adjacency=np.array([[0.0]]), features=rng.normal(size=(1, 3)),
            labels=np.array([0]),
            mapping=sp.csr_matrix(np.array([[1.0], [1.0]])),
            method="random")
        return left, right

    def test_block_structure_and_lifted_mapping(self, rng, path_graph):
        left, right = self._parts(rng)
        positions = [np.array([0, 1, 2]), np.array([3, 4])]
        merged = merge_condensed(path_graph, positions, [left, right])
        assert merged.num_nodes == 3
        np.testing.assert_array_equal(merged.adjacency[:2, :2], left.adjacency)
        assert merged.adjacency[2, 2] == 0.0
        # path edge 2-3 crosses the cut: M_l^T A_cut M_r puts its mass on
        # (left synthetic 0/1 via node 2's 0.5/0.5 row) x (right synthetic 0)
        np.testing.assert_allclose(merged.adjacency[:2, 2], [0.5, 0.5])
        np.testing.assert_allclose(merged.adjacency[2, :2], [0.5, 0.5])
        assert merged.mapping.shape == (5, 3)
        dense = merged.mapping.toarray()
        np.testing.assert_array_equal(dense[:3, :2], left.mapping.toarray())
        np.testing.assert_array_equal(dense[3:, 2:], right.mapping.toarray())

    def test_cut_scale_zero_keeps_blocks_disjoint(self, rng, path_graph):
        left, right = self._parts(rng)
        positions = [np.array([0, 1, 2]), np.array([3, 4])]
        merged = merge_condensed(path_graph, positions, [left, right],
                                 cut_scale=0.0)
        assert merged.adjacency[:2, 2:].sum() == 0.0

    def test_single_part_is_identity(self, rng, path_graph):
        left, _ = self._parts(rng)
        merged = merge_condensed(path_graph, [np.arange(5)], [left])
        # only shapes involving the mapping change: rows lift to 5 == 3? no —
        # mapping rows follow the original graph, here 5 > 3 rows
        np.testing.assert_array_equal(merged.adjacency, left.adjacency)
        np.testing.assert_array_equal(merged.features, left.features)

    def test_missing_mapping_disables_cut_rescoring(self, rng, path_graph):
        left, right = self._parts(rng)
        bare = CondensedGraph(adjacency=right.adjacency,
                              features=right.features, labels=right.labels,
                              mapping=None, method="gcond")
        merged = merge_condensed(path_graph,
                                 [np.array([0, 1, 2]), np.array([3, 4])],
                                 [left, bare])
        assert merged.mapping is None
        assert merged.adjacency[:2, 2:].sum() == 0.0

    def test_empty_parts_rejected(self, path_graph):
        with pytest.raises(CondensationError):
            merge_condensed(path_graph, [], [])


class TestShardedReducer:
    def test_shards_one_is_bit_identical_to_direct_mcond(self, tiny_split):
        direct = make_reducer("mcond", seed=5, **FAST_MCOND).reduce(
            tiny_split, 9)
        sharded = make_reducer("sharded", seed=5, inner="mcond", shards=1,
                               **FAST_MCOND).reduce(tiny_split, 9)
        _assert_bit_identical(direct, sharded)

    def test_shards_one_is_bit_identical_to_direct_coreset(self, tiny_split):
        direct = make_reducer("herding", seed=3).reduce(tiny_split, 9)
        sharded = ShardedReducer(method="herding", shards=1, seed=3).reduce(
            tiny_split, 9)
        _assert_bit_identical(direct, sharded)

    @pytest.mark.parametrize("partitioner", ("stratified", "degree"))
    def test_merged_output_invariants(self, tiny_split, partitioner):
        reducer = ShardedReducer(method="mcond", shards=2, seed=0,
                                 partitioner=partitioner,
                                 inner_config=FAST_MCOND)
        condensed = reducer.reduce(tiny_split, 9)
        assert condensed.num_nodes == 9
        assert condensed.supports_attachment()
        assert condensed.mapping.shape == (tiny_split.original.num_nodes, 9)
        assert np.allclose(condensed.adjacency, condensed.adjacency.T)
        assert np.unique(condensed.labels).size == tiny_split.num_classes
        assert len(reducer.last_plan) == 2
        assert sum(s["budget"] for s in reducer.last_plan) == 9

    def test_parallel_workers_match_serial(self, tiny_split):
        serial = ShardedReducer(method="mcond", shards=2, workers=1, seed=1,
                                inner_config=FAST_MCOND).reduce(tiny_split, 9)
        parallel = ShardedReducer(method="mcond", shards=2, workers=2, seed=1,
                                  inner_config=FAST_MCOND).reduce(tiny_split, 9)
        _assert_bit_identical(serial, parallel)

    def test_mapless_inner_method_merges_without_mapping(self, tiny_split):
        config = {"outer_loops": 1, "match_steps": 2,
                  "adjacency_pretrain_steps": 10}
        condensed = ShardedReducer(method="doscond", shards=2, seed=0,
                                   inner_config=config).reduce(tiny_split, 9)
        assert condensed.num_nodes == 9
        assert not condensed.supports_attachment()

    def test_profile_fields_dropped_for_coreset_inner(self, tiny_split):
        # Coresets accept none of the effort-profile fields; the wrapper
        # must drop them instead of crashing the factory.
        reducer = ShardedReducer(
            method="random", shards=2, seed=0,
            inner_config={"outer_loops": 2, "match_steps": 8,
                          "mapping_steps": 20, "relay_steps": 3})
        condensed = reducer.reduce(tiny_split, 9)
        assert condensed.num_nodes == 9

    def test_serving_path_composes(self, tiny_split):
        from repro.inference.engine import InductiveServer
        from repro.nn.models import make_model
        from repro.nn.trainer import TrainConfig, train_node_classifier

        condensed = ShardedReducer(method="mcond", shards=2, seed=0,
                                   inner_config=FAST_MCOND).reduce(
            tiny_split, 9)
        model = make_model("sgc", tiny_split.original.feature_dim,
                           tiny_split.num_classes, seed=0)
        train_node_classifier(
            model, condensed.normalized_adjacency(), condensed.features,
            condensed.labels, np.arange(condensed.num_nodes),
            config=TrainConfig(epochs=5, lr=0.05, patience=5))
        server = InductiveServer(model, "synthetic", tiny_split.original,
                                 condensed)
        batch = tiny_split.incremental_batch("test")
        logits, _, _ = server.serve_batch(batch, "node")
        assert logits.shape == (batch.num_nodes, tiny_split.num_classes)

    def test_nested_sharding_rejected(self):
        with pytest.raises(CondensationError, match="nest"):
            ShardedReducer(method="sharded")

    def test_invalid_shards_and_workers_rejected(self):
        with pytest.raises(CondensationError):
            ShardedReducer(shards=0)
        with pytest.raises(CondensationError):
            ShardedReducer(workers=0)

    def test_budget_too_small_for_shard_count(self, tiny_split):
        reducer = ShardedReducer(method="random", shards=4, seed=0)
        with pytest.raises(CondensationError, match="fewer shards"):
            reducer.reduce(tiny_split, 9)   # floor 3 classes x 4 shards > 9


class TestCondenseBenchmark:
    @pytest.fixture(scope="class")
    def result(self):
        return run_condense_scaling_benchmark(
            "tiny-sim", method="mcond", budget=9, shard_counts=(1, 2),
            profile="quick", repeats=1)

    def test_schema_checks(self, result):
        check_condense_benchmark_schema(result)
        assert result["dataset"] == "tiny-sim"
        assert [v["shards"] for v in result["sharded"]] == [1, 2]

    def test_shards_one_parity_recorded(self, result):
        first = result["sharded"][0]
        assert first["parity_bit_identical"] is True

    def test_schema_rejects_missing_sections(self, result):
        broken = dict(result)
        broken.pop("baseline")
        with pytest.raises(CondensationError, match="baseline"):
            check_condense_benchmark_schema(broken)

    def test_gate_flags_regressions(self, result):
        slow = {**result, "sharded": [
            {**v, "wall_clock_s": result["baseline"]["wall_clock_s"] * 10}
            for v in result["sharded"]]}
        failures = gate_condense_benchmark(slow, shards=2)
        assert any("wall-clock" in f for f in failures)

        lossy = {**result, "sharded": [
            {**v, "accuracy_drop_points": 5.0} for v in result["sharded"]]}
        failures = gate_condense_benchmark(lossy, shards=2,
                                           max_accuracy_drop=2.0)
        assert any("accuracy drop" in f for f in failures)

    def test_gate_missing_variant(self, result):
        failures = gate_condense_benchmark(result, shards=16)
        assert failures and "shards=16" in failures[0]
