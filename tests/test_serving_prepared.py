"""PreparedDeployment: bitwise parity with the naive serving path."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError, InferenceError, ServingError
from repro.graph.datasets import IncrementalBatch
from repro.graph.graph import Graph
from repro.inference import InductiveServer
from repro.nn import make_model
from repro.serving import PreparedDeployment


@pytest.fixture(scope="module")
def split():
    from repro.graph import load_dataset
    return load_dataset("tiny-sim", seed=7)


@pytest.fixture(scope="module")
def condensed(split):
    from repro.condense import MCondConfig, MCondReducer
    config = MCondConfig(outer_loops=1, match_steps=3, mapping_steps=5,
                        adjacency_pretrain_steps=30, seed=3)
    return MCondReducer(config).reduce(split, 9)


@pytest.fixture(scope="module")
def sgc(split):
    return make_model("sgc", split.original.feature_dim, split.num_classes,
                      seed=0)


def _servers(model, deployment, split, condensed):
    base = split.original if deployment == "original" else None
    cond = condensed if deployment == "synthetic" else None
    naive = InductiveServer(model, deployment, base, cond, use_cache=False)
    cached = InductiveServer(model, deployment, base, cond)
    return naive, cached


class TestBitwiseParity:
    @pytest.mark.parametrize("deployment", ("original", "synthetic"))
    @pytest.mark.parametrize("batch_mode", ("graph", "node"))
    def test_serve_batch_parity(self, sgc, split, condensed, deployment,
                                batch_mode):
        naive, cached = _servers(sgc, deployment, split, condensed)
        batch = split.incremental_batch("test")
        logits_naive, _, memory_naive = naive.serve_batch(batch, batch_mode)
        logits_cached, _, memory_cached = cached.serve_batch(batch, batch_mode)
        assert np.array_equal(logits_naive, logits_cached)  # exact, not close
        assert memory_naive == memory_cached

    @pytest.mark.parametrize("deployment", ("original", "synthetic"))
    def test_minibatched_run_parity(self, sgc, split, condensed, deployment):
        naive, cached = _servers(sgc, deployment, split, condensed)
        batch = split.incremental_batch("test")
        report_naive = naive.run(batch, batch_size=16, batch_mode="graph")
        report_cached = cached.run(batch, batch_size=16, batch_mode="graph")
        assert np.array_equal(report_naive.logits, report_cached.logits)
        assert report_naive.accuracy == report_cached.accuracy
        assert report_naive.memory_bytes == report_cached.memory_bytes

    @pytest.mark.parametrize("model_name", ("gcn", "appnp"))
    def test_parity_across_architectures(self, split, condensed, model_name):
        model = make_model(model_name, split.original.feature_dim,
                           split.num_classes, seed=1)
        naive, cached = _servers(model, "synthetic", split, condensed)
        batch = split.incremental_batch("val")
        logits_naive, _, _ = naive.serve_batch(batch, "graph")
        logits_cached, _, _ = cached.serve_batch(batch, "graph")
        assert np.array_equal(logits_naive, logits_cached)

    def test_parity_on_weighted_base(self, rng):
        # Weighted adjacencies exercise the float summation-order traps
        # (pairwise reduceat degrees, scale multiplication order).
        n = 40
        dense = rng.random((n, n)) * (rng.random((n, n)) < 0.2)
        adjacency = sp.csr_matrix(np.maximum(dense, dense.T))
        features = rng.normal(size=(n, 5))
        base = Graph(adjacency, features, rng.integers(0, 2, size=n))
        model = make_model("sgc", 5, 2, seed=0)
        batch = IncrementalBatch(
            features=rng.normal(size=(7, 5)),
            incremental=sp.csr_matrix(
                rng.random((7, n)) * (rng.random((7, n)) < 0.3)),
            intra=sp.csr_matrix(np.zeros((7, 7))),
            labels=np.zeros(7, dtype=np.int64))
        naive = InductiveServer(model, "original", base, use_cache=False)
        cached = InductiveServer(model, "original", base)
        for mode in ("graph", "node"):
            logits_naive, _, mem_naive = naive.serve_batch(batch, mode)
            logits_cached, _, mem_cached = cached.serve_batch(batch, mode)
            assert np.array_equal(logits_naive, logits_cached)
            assert mem_naive == mem_cached

    def test_operator_matches_naive_structure(self, split, sgc):
        from repro.graph.ops import symmetric_normalize
        prepared = PreparedDeployment(sgc, "original", split.original)
        batch = split.incremental_batch("val")
        operator, features, _ = prepared.attach_normalize(
            batch.incremental, batch.features, batch.intra)
        naive = InductiveServer(sgc, "original", split.original,
                                use_cache=False)
        attached = naive.attach(batch, "graph")
        expected = symmetric_normalize(attached.adjacency)
        assert np.array_equal(expected.indptr, operator.indptr)
        assert np.array_equal(expected.indices, operator.indices)
        assert np.array_equal(expected.data, operator.data)
        assert np.array_equal(attached.features, features)


class TestFrozenPath:
    def test_isolated_request_is_exact(self, split, sgc):
        # A request with no connections at all leaves the base degrees
        # untouched, so the frozen approximation collapses to the exact path.
        prepared = PreparedDeployment(sgc, "original", split.original)
        n_base = split.original.num_nodes
        batch = IncrementalBatch(
            features=np.random.default_rng(0).normal(
                size=(3, split.original.feature_dim)),
            incremental=sp.csr_matrix((3, n_base)),
            intra=sp.csr_matrix((3, 3)),
            labels=np.zeros(3, dtype=np.int64))
        exact, _, _ = prepared.serve_batch(batch, "node")
        frozen, _, _ = prepared.serve_batch_frozen(batch, "node")
        assert np.array_equal(exact, frozen)

    def test_small_request_is_close(self, split, sgc):
        prepared = PreparedDeployment(sgc, "original", split.original)
        batch = split.incremental_batch("test").subset(np.arange(2))
        exact, _, _ = prepared.serve_batch(batch, "node")
        frozen, _, _ = prepared.serve_batch_frozen(batch, "node")
        # The approximation ignores how arrivals renormalize their base
        # neighbourhood — on a 180-node graph that costs tens of percent,
        # not orders of magnitude.  Assert same scale, bounded error.
        rel = (np.linalg.norm(exact - frozen)
               / max(np.linalg.norm(exact), 1e-12))
        assert rel < 0.5

    def test_propagated_features_cached_and_hop_count(self, split, sgc):
        prepared = PreparedDeployment(sgc, "original", split.original)
        hops = prepared.propagated_base_features()
        assert len(hops) == sgc.k_hops + 1
        assert np.array_equal(hops[0], prepared.base_features)
        assert prepared.propagated_base_features() is hops  # cached

    def test_requires_linear_propagation(self, split):
        gcn = make_model("gcn", split.original.feature_dim,
                         split.num_classes, seed=0)
        prepared = PreparedDeployment(gcn, "original", split.original)
        with pytest.raises(ServingError):
            prepared.propagated_base_features()


class TestWarmBase:
    def test_matches_standalone_forward(self, split, sgc):
        from repro.tensor.tensor import Tensor, no_grad
        prepared = PreparedDeployment(sgc, "original", split.original)
        warm = prepared.warm_base()
        sgc.eval()
        with no_grad():
            expected = sgc(prepared.base_operator(),
                           Tensor(prepared.base_features)).data
        assert np.array_equal(warm, expected)
        assert prepared.warm_base() is warm  # computed once


class TestValidation:
    def test_unknown_deployment(self, split, sgc):
        with pytest.raises(InferenceError):
            PreparedDeployment(sgc, "edge", split.original)

    def test_synthetic_requires_condensed(self, sgc):
        with pytest.raises(InferenceError):
            PreparedDeployment(sgc, "synthetic", None)

    def test_original_requires_base(self, sgc):
        with pytest.raises(InferenceError):
            PreparedDeployment(sgc, "original", None)

    def test_feature_dim_mismatch(self, split, sgc):
        prepared = PreparedDeployment(sgc, "original", split.original)
        with pytest.raises(GraphError):
            prepared.attach_normalize(
                sp.csr_matrix((1, split.original.num_nodes)),
                np.zeros((1, split.original.feature_dim + 2)))

    def test_incremental_shape_mismatch(self, split, sgc):
        prepared = PreparedDeployment(sgc, "original", split.original)
        with pytest.raises(GraphError):
            prepared.attach_normalize(
                sp.csr_matrix((1, 5)),
                np.zeros((1, split.original.feature_dim)))

    def test_bad_batch_mode(self, split, sgc, condensed):
        prepared = PreparedDeployment(sgc, "original", split.original)
        batch = split.incremental_batch("val")
        with pytest.raises(InferenceError):
            prepared.serve_batch(batch, "stream")
