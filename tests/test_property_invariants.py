"""Cross-module property tests on the paper's core invariants."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.condense import allocate_class_counts, selection_mapping, sparsify_matrix
from repro.graph import (
    adjacency_from_edges,
    attach_to_original,
    attach_to_synthetic,
    convert_connections,
    dense_symmetric_normalize,
)

SMALL = st.integers(min_value=2, max_value=8)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=4), min_size=5, max_size=40),
       st.integers(min_value=5, max_value=20))
def test_allocation_sums_to_budget_and_covers_present_classes(labels, budget):
    labels = np.asarray(labels)
    present = np.unique(labels)
    if budget < present.size:
        budget = present.size
    counts = allocate_class_counts(labels, budget, 5)
    assert counts.sum() == budget
    assert (counts[present] >= 1).all()
    absent = np.setdiff1d(np.arange(5), present)
    assert (counts[absent] == 0).all()


@settings(max_examples=30, deadline=None)
@given(SMALL, SMALL)
def test_selection_mapping_converts_to_column_selection(n_orig, n_sel):
    n_sel = min(n_sel, n_orig)
    rng = np.random.default_rng(n_orig * 31 + n_sel)
    selected = rng.choice(n_orig, size=n_sel, replace=False)
    mapping = selection_mapping(selected, n_orig)
    incremental = sp.csr_matrix(rng.random((3, n_orig)) > 0.5, dtype=float)
    converted = convert_connections(incremental, mapping).toarray()
    assert np.allclose(converted, incremental.toarray()[:, selected])


@settings(max_examples=25, deadline=None)
@given(SMALL, st.integers(min_value=1, max_value=4))
def test_attach_original_symmetry_property(n_base, n_new):
    rng = np.random.default_rng(n_base * 7 + n_new)
    edges = np.array([[i, (i + 1) % n_base] for i in range(n_base)])
    base = adjacency_from_edges(edges, n_base)
    incremental = sp.csr_matrix((rng.random((n_new, n_base)) > 0.5).astype(float))
    attached = attach_to_original(base, rng.random((n_base, 2)), incremental,
                                  rng.random((n_new, 2)))
    dense = attached.adjacency.toarray()
    assert np.allclose(dense, dense.T)
    assert attached.num_nodes == n_base + n_new


@settings(max_examples=25, deadline=None)
@given(SMALL, st.integers(min_value=1, max_value=3), SMALL)
def test_attach_synthetic_block_shapes(n_orig, n_new, n_syn):
    rng = np.random.default_rng(n_orig + 13 * n_new + 101 * n_syn)
    synthetic = rng.random((n_syn, n_syn))
    synthetic = 0.5 * (synthetic + synthetic.T)
    np.fill_diagonal(synthetic, 0.0)
    mapping = rng.random((n_orig, n_syn))
    incremental = sp.csr_matrix((rng.random((n_new, n_orig)) > 0.3).astype(float))
    attached = attach_to_synthetic(synthetic, rng.random((n_syn, 2)),
                                   incremental, rng.random((n_new, 2)), mapping)
    assert attached.base_size == n_syn
    assert attached.num_new == n_new
    dense = attached.adjacency.toarray()
    assert np.allclose(dense[:n_syn, :n_syn], synthetic)
    expected = incremental.toarray() @ mapping
    assert np.allclose(dense[n_syn:, :n_syn], expected)


@settings(max_examples=25, deadline=None)
@given(SMALL)
def test_dense_normalization_spectral_bound(n):
    rng = np.random.default_rng(n)
    adjacency = rng.random((n, n))
    adjacency = 0.5 * (adjacency + adjacency.T)
    np.fill_diagonal(adjacency, 0.0)
    normalized = dense_symmetric_normalize(adjacency, self_loops=True)
    eigenvalues = np.linalg.eigvalsh(normalized)
    assert eigenvalues.max() <= 1.0 + 1e-9
    assert eigenvalues.min() >= -1.0 - 1e-9


@settings(max_examples=25, deadline=None)
@given(st.floats(min_value=0.0, max_value=1.0))
def test_sparsify_preserves_large_entries_exactly(threshold):
    rng = np.random.default_rng(int(threshold * 1000))
    matrix = rng.random((6, 6))
    sparse = sparsify_matrix(matrix, threshold).toarray()
    large = matrix >= threshold
    assert np.allclose(sparse[large], matrix[large])
    assert (sparse[~large] == 0).all()
