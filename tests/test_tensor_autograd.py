"""Autograd graph mechanics: grad API, accumulation, higher-order, modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AutogradError, ShapeError
from repro.tensor import (
    Tensor,
    add,
    enable_grad,
    grad,
    gradgradcheck,
    is_grad_enabled,
    matmul,
    mul,
    no_grad,
    power,
    relu,
    sigmoid,
    tensor_sum,
)

RNG = np.random.default_rng(1)


class TestGradApi:
    def test_grad_simple_chain(self):
        x = Tensor([2.0], requires_grad=True)
        y = mul(x, x)
        (gx,) = grad(y, [x], grad_outputs=[np.ones(1)])
        assert gx.data == pytest.approx([4.0])

    def test_grad_scalar_output_implicit_seed(self):
        x = Tensor(3.0, requires_grad=True)
        (gx,) = grad(mul(x, x), [x])
        assert gx.item() == pytest.approx(6.0)

    def test_nonscalar_output_requires_seed(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(AutogradError):
            grad(mul(x, x), [x])

    def test_seed_shape_mismatch_rejected(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ShapeError):
            grad(mul(x, x), [x], grad_outputs=[np.ones(4)])

    def test_unreachable_input_raises(self):
        x = Tensor(1.0, requires_grad=True)
        z = Tensor(1.0, requires_grad=True)
        with pytest.raises(AutogradError):
            grad(mul(x, x), [z])

    def test_allow_unused_returns_none(self):
        x = Tensor(1.0, requires_grad=True)
        z = Tensor(1.0, requires_grad=True)
        out = grad(mul(x, x), [z], allow_unused=True)
        assert out == [None]

    def test_grad_accumulates_over_shared_input(self):
        x = Tensor(2.0, requires_grad=True)
        y = add(mul(x, x), mul(x, x))  # 2x^2 -> dy/dx = 4x
        (gx,) = grad(y, [x])
        assert gx.item() == pytest.approx(8.0)

    def test_grad_multiple_outputs(self):
        x = Tensor(2.0, requires_grad=True)
        y1 = mul(x, x)
        y2 = mul(x, Tensor(3.0))
        (gx,) = grad([y1, y2], [x])
        assert gx.item() == pytest.approx(2 * 2.0 + 3.0)

    def test_grad_of_intermediate_node(self):
        x = Tensor(2.0, requires_grad=True)
        h = mul(x, x)
        y = mul(h, h)  # x^4
        (gh,) = grad(y, [h])
        assert gh.item() == pytest.approx(2 * 4.0)  # 2h at h=4

    def test_empty_outputs_rejected(self):
        with pytest.raises(AutogradError):
            grad([], [Tensor(1.0, requires_grad=True)])


class TestBackwardMethod:
    def test_backward_populates_leaf_grads(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        tensor_sum(mul(x, x)).backward()
        assert np.allclose(x.grad.data, [2.0, 4.0])

    def test_backward_accumulates(self):
        x = Tensor(2.0, requires_grad=True)
        mul(x, x).backward()
        mul(x, x).backward()
        assert x.grad.item() == pytest.approx(8.0)

    def test_zero_grad_clears(self):
        x = Tensor(2.0, requires_grad=True)
        mul(x, x).backward()
        x.zero_grad()
        assert x.grad is None


class TestGradModes:
    def test_no_grad_blocks_graph(self):
        x = Tensor(1.0, requires_grad=True)
        with no_grad():
            y = mul(x, x)
        assert not y.requires_grad

    def test_enable_grad_nested(self):
        x = Tensor(1.0, requires_grad=True)
        with no_grad():
            with enable_grad():
                y = mul(x, x)
        assert y.requires_grad

    def test_mode_restored_after_exception(self):
        try:
            with no_grad():
                raise ValueError("boom")
        except ValueError:
            pass
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = Tensor(2.0, requires_grad=True)
        y = mul(x, x).detach()
        assert not y.requires_grad
        with pytest.raises(AutogradError):
            grad(mul(y, y), [x])


class TestHigherOrder:
    def test_second_derivative_of_cube(self):
        x = Tensor(2.0, requires_grad=True)
        y = power(x, 3.0)
        (g1,) = grad(y, [x], create_graph=True)
        (g2,) = grad(g1, [x])
        assert g2.item() == pytest.approx(12.0)  # 6x at x=2

    def test_second_derivative_matmul_chain(self):
        x = Tensor(RNG.standard_normal((3, 3)), requires_grad=True)
        w = Tensor(RNG.standard_normal((3, 3)))
        y = tensor_sum(mul(matmul(x, w), matmul(x, w)))
        (g1,) = grad(y, [x], create_graph=True)
        (g2,) = grad(tensor_sum(g1), [x])
        # y = sum((XW)^2): d2y/dX2 applied to ones is constant in X.
        expected = 2 * np.ones((3, 3)) @ w.data.T * (np.ones((3, 3)) @ w.data.T)
        # The Hessian-vector structure: grad(sum(g1)) = 2 * ones@(W W^T)^T... just
        # verify numerically instead of analytically:
        eps = 1e-5
        num = np.zeros_like(x.data)
        for i in range(3):
            for j in range(3):
                x.data[i, j] += eps
                (gp,) = grad(tensor_sum(mul(matmul(x, w), matmul(x, w))), [x],
                             grad_outputs=None)
                hi = gp.data.sum()
                x.data[i, j] -= 2 * eps
                (gm,) = grad(tensor_sum(mul(matmul(x, w), matmul(x, w))), [x])
                lo = gm.data.sum()
                x.data[i, j] += eps
                num[i, j] = (hi - lo) / (2 * eps)
        assert np.allclose(g2.data, num, atol=1e-4)

    def test_gradgradcheck_sigmoid_relu_mix(self):
        x = Tensor(RNG.standard_normal((3, 4)) + 0.3, requires_grad=True)
        gradgradcheck(lambda t: tensor_sum(mul(sigmoid(t), relu(t))), [x])

    def test_create_graph_false_grads_detached(self):
        x = Tensor(2.0, requires_grad=True)
        (g1,) = grad(power(x, 3.0), [x], create_graph=False)
        assert not g1.requires_grad


class TestTensorBasics:
    def test_item_on_nonscalar_rejected(self):
        with pytest.raises(ShapeError):
            Tensor(np.ones(3)).item()

    def test_repr_mentions_shape(self):
        assert "shape=(2, 3)" in repr(Tensor(np.ones((2, 3))))

    def test_operator_overloads(self):
        x = Tensor([2.0], requires_grad=True)
        y = ((x + 1.0) * 3.0 - 2.0) / 2.0
        assert y.data == pytest.approx([3.5])
        (gx,) = grad(tensor_sum(y), [x])
        assert gx.data == pytest.approx([1.5])

    def test_radd_rsub_rmul_rtruediv(self):
        x = Tensor([2.0])
        assert (1.0 + x).data == pytest.approx([3.0])
        assert (1.0 - x).data == pytest.approx([-1.0])
        assert (3.0 * x).data == pytest.approx([6.0])
        assert (4.0 / x).data == pytest.approx([2.0])

    def test_matmul_operator(self):
        a = Tensor(np.eye(2))
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose((a @ b).data, b.data)

    def test_power_operator(self):
        x = Tensor([3.0])
        assert (x ** 2).data == pytest.approx([9.0])

    def test_copy_independent(self):
        x = Tensor([1.0], requires_grad=True)
        y = x.copy()
        y.data[0] = 5.0
        assert x.data[0] == 1.0
        assert y.requires_grad
