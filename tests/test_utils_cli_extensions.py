"""Utilities, the CLI, DosCond, and the Correct&Smooth extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.condense import DosCondConfig, DosCondReducer
from repro.errors import ConfigError
from repro.graph import adjacency_from_edges, attach_to_original
from repro.propagation import correct_and_smooth, smooth_predictions
from repro.utils import Stopwatch, format_seconds, seed_everything, spawn_rngs


class TestSeeding:
    def test_seed_everything_returns_generator(self):
        rng = seed_everything(42)
        assert isinstance(rng, np.random.Generator)

    def test_seed_everything_reproducible(self):
        a = seed_everything(7).random(4)
        b = seed_everything(7).random(4)
        assert np.allclose(a, b)

    def test_seed_everything_type_check(self):
        with pytest.raises(ConfigError):
            seed_everything("seed")

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(0, 3)
        assert len(rngs) == 3
        draws = [rng.random(8) for rng in rngs]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_spawn_rngs_count_validation(self):
        with pytest.raises(ConfigError):
            spawn_rngs(0, 0)


class TestTimers:
    def test_stopwatch_measures(self):
        with Stopwatch() as watch:
            sum(range(10000))
        assert watch.elapsed > 0.0

    def test_format_seconds_ranges(self):
        assert format_seconds(5e-5).endswith("us")
        assert format_seconds(0.005).endswith("ms")
        assert format_seconds(2.5) == "2.5s"
        assert format_seconds(125.0) == "2m05.0s"

    def test_format_seconds_negative_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-1.0)


def _fast_profile(monkeypatch):
    """Patch the CLI's quick profile to something near-instant."""
    import repro.cli as cli
    from repro.experiments import EffortProfile
    monkeypatch.setattr(cli, "QUICK", EffortProfile(
        name="cli-test", train_epochs=5, train_patience=5, train_lr=0.05,
        outer_loops=1, match_steps=1, mapping_steps=2, relay_steps=1,
        seeds=(0,), inference_repeats=1))


class TestCli:
    def test_parser_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table2", "--dataset", "tiny-sim"])
        assert args.experiment == "table2"
        assert args.dataset == "tiny-sim"

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table9"])

    def test_unknown_dataset_exits_cleanly(self, capsys):
        code = main(["table2", "--dataset", "does-not-exist"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_list_enumerates_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in ("mcond", "gcond", "sgc", "pubmed-sim", "table2",
                    "mcond_ss"):
            assert key in out

    def test_condense_unknown_method_lists_keys(self, capsys):
        code = main(["condense", "--dataset", "tiny-sim", "--method", "nope",
                     "--budget", "9"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "mcond" in err           # the available keys are listed

    def test_condense_unknown_dataset_lists_keys(self, capsys):
        code = main(["condense", "--dataset", "nope", "--method", "mcond"])
        assert code == 2
        assert "tiny-sim" in capsys.readouterr().err

    def test_serve_missing_artifact_exits_cleanly(self, capsys, tmp_path):
        code = main(["serve", "--artifact", str(tmp_path / "missing.npz")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_corrupt_artifact_exits_cleanly(self, capsys, tmp_path):
        corrupt = tmp_path / "corrupt.npz"
        corrupt.write_bytes(b"this is not a zip archive")
        code = main(["serve", "--artifact", str(corrupt)])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "corrupt.npz" in err

    def test_condense_unwritable_output_exits_cleanly(self, capsys,
                                                      monkeypatch, tmp_path):
        _fast_profile(monkeypatch)
        target = tmp_path / "no" / "such" / "dir" / "bundle.npz"
        code = main(["condense", "--dataset", "tiny-sim", "--method", "random",
                     "--budget", "9", "--output", str(target)])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "bundle.npz" in err

    def test_condense_then_serve_roundtrip(self, capsys, monkeypatch,
                                           tmp_path):
        _fast_profile(monkeypatch)
        artifact = tmp_path / "bundle.npz"
        code = main(["condense", "--dataset", "tiny-sim", "--method", "mcond",
                     "--budget", "9", "--output", str(artifact)])
        assert code == 0
        assert artifact.exists()
        out = capsys.readouterr().out
        assert "DeploymentBundle" in out

        code = main(["serve", "--artifact", str(artifact),
                     "--batch-mode", "node"])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "synthetic" in out

    def test_condense_sharded_roundtrip(self, capsys, monkeypatch, tmp_path):
        _fast_profile(monkeypatch)
        artifact = tmp_path / "sharded.npz"
        code = main(["condense", "--dataset", "tiny-sim", "--method", "mcond",
                     "--budget", "9", "--shards", "2", "--workers", "2",
                     "--output", str(artifact)])
        assert code == 0
        out = capsys.readouterr().out
        assert "sharded offline phase: 2 shards, 2 workers" in out
        assert artifact.exists()

        code = main(["serve", "--artifact", str(artifact),
                     "--batch-mode", "node"])
        assert code == 0
        assert "accuracy" in capsys.readouterr().out

    def test_condense_then_serve_stream_roundtrip(self, capsys, monkeypatch,
                                                  tmp_path):
        _fast_profile(monkeypatch)
        artifact = tmp_path / "streamable.npz"
        code = main(["condense", "--dataset", "tiny-sim", "--method", "whole",
                     "--deployment", "original", "--output", str(artifact)])
        assert code == 0
        out = capsys.readouterr().out
        assert "deployment='original'" in out
        assert artifact.exists()

        code = main(["serve-stream", "--artifact", str(artifact),
                     "--deltas", "2", "--nodes-per-delta", "2",
                     "--requests", "8", "--batch-mode", "node"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ingesting 2 deltas" in out
        assert "delta refresh" in out
        assert "+4 streamed" in out

    def test_serve_stream_on_synthetic_bundle_appends_only(
            self, capsys, monkeypatch, tmp_path):
        _fast_profile(monkeypatch)
        artifact = tmp_path / "synthetic.npz"
        code = main(["condense", "--dataset", "tiny-sim", "--method", "mcond",
                     "--budget", "9", "--output", str(artifact)])
        assert code == 0
        capsys.readouterr()
        code = main(["serve-stream", "--artifact", str(artifact),
                     "--deltas", "2", "--nodes-per-delta", "1",
                     "--requests", "6", "--batch-mode", "node"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ingesting 2 deltas" in out

    def test_bench_stream_writes_gated_artifact(self, capsys, monkeypatch,
                                                tmp_path):
        import json

        _fast_profile(monkeypatch)
        output = tmp_path / "BENCH_streaming.json"
        code = main(["bench-stream", "--dataset", "tiny-sim", "--method",
                     "whole", "--deltas", "3", "--requests", "8",
                     "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "parity" in out
        payload = json.loads(output.read_text())
        assert payload["kind"] == "streaming-benchmark"
        assert payload["parity"]["bit_identical"] is True

    def test_condense_whole_with_shards_rejected(self, capsys):
        code = main(["condense", "--dataset", "tiny-sim", "--method", "whole",
                     "--shards", "2"])
        assert code == 2
        assert ("--shards requires a reduction method"
                in capsys.readouterr().err)

    def test_condense_sharded_unknown_partitioner(self, capsys, monkeypatch):
        _fast_profile(monkeypatch)
        code = main(["condense", "--dataset", "tiny-sim", "--method", "mcond",
                     "--budget", "9", "--shards", "2",
                     "--partitioner", "metis"])
        assert code == 2
        assert "stratified" in capsys.readouterr().err  # alternatives listed

    def test_eval_runs_one_method(self, capsys, monkeypatch):
        _fast_profile(monkeypatch)
        code = main(["eval", "--dataset", "tiny-sim", "--method", "random",
                     "--budget", "9", "--batch-mode", "node"])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out

    def test_eval_unknown_method_exits_cleanly(self, capsys):
        code = main(["eval", "--dataset", "tiny-sim", "--method", "bogus",
                     "--budget", "9"])
        assert code == 2
        assert "whole" in capsys.readouterr().err  # known methods listed

    def test_table5_runs_on_tiny(self, capsys, monkeypatch):
        _fast_profile(monkeypatch)
        code = main(["table5", "--dataset", "tiny-sim", "--budget", "9"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table V" in out
        assert "full" in out


class TestServingCli:
    def test_list_includes_serving_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in ("microbatch", "immediate", "sizecap",
                    "poisson", "bursty", "ramp"):
            assert key in out

    def test_list_falls_back_for_undescribed_entries(self, capsys):
        # policies registered without a docstring must fall back to the
        # factory name in `repro list`, never print None/blank
        from repro.registry import SHED_POLICIES, FactoryEntry

        def quiet_policy():  # no docstring on purpose
            raise NotImplementedError

        SHED_POLICIES.register("quiet-test", FactoryEntry(
            name="quiet-test", factory=quiet_policy))
        try:
            assert main(["list"]) == 0
            out = capsys.readouterr().out
            line = next(ln for ln in out.splitlines() if "quiet-test" in ln)
            assert "None" not in line
            assert "quiet_policy" in line
        finally:
            SHED_POLICIES.unregister("quiet-test")

    def test_entry_help_fallbacks(self):
        from repro.cli import _entry_help
        from repro.registry import FactoryEntry

        def some_factory():
            raise NotImplementedError

        described = FactoryEntry(name="a", factory=some_factory,
                                 description="does a thing")
        assert _entry_help(described) == "does a thing"
        bare = FactoryEntry(name="b", factory=some_factory)
        assert _entry_help(bare) == "some_factory"

    def test_serve_online_missing_artifact(self, capsys, tmp_path):
        code = main(["serve-online",
                     "--artifact", str(tmp_path / "missing.npz")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_online_roundtrip(self, capsys, monkeypatch, tmp_path):
        _fast_profile(monkeypatch)
        artifact = tmp_path / "bundle.npz"
        assert main(["condense", "--dataset", "tiny-sim", "--method", "mcond",
                     "--budget", "9", "--output", str(artifact)]) == 0
        capsys.readouterr()
        code = main(["serve-online", "--artifact", str(artifact),
                     "--requests", "6", "--closed-loop",
                     "--batch-mode", "node", "--max-batch-size", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 6 requests" in out
        assert "latency p50/p95/p99" in out
        assert "throughput" in out

    def test_bench_writes_schema_checked_json(self, capsys, tmp_path):
        import json

        from repro.serving import check_benchmark_schema

        output = tmp_path / "BENCH_serving.json"
        code = main(["bench", "--dataset", "tiny-sim", "--budget", "9",
                     "--requests", "8", "--nodes-per-request", "2",
                     "--max-batch-size", "4", "--repeats", "2",
                     "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "bitwise parity: True" in out
        result = json.loads(output.read_text())
        check_benchmark_schema(result)
        assert result["dataset"] == "tiny-sim"

    def test_bench_condense_writes_schema_checked_json(self, capsys,
                                                       tmp_path):
        import json

        from repro.condense import check_condense_benchmark_schema

        output = tmp_path / "BENCH_condense.json"
        code = main(["bench-condense", "--dataset", "tiny-sim",
                     "--budget", "9", "--shards", "1,2",
                     "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "parity ok" in out
        result = json.loads(output.read_text())
        check_condense_benchmark_schema(result)
        assert result["dataset"] == "tiny-sim"

    def test_bench_condense_rejects_bad_shard_list(self, capsys):
        code = main(["bench-condense", "--dataset", "tiny-sim",
                     "--shards", "two,four"])
        assert code == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_list_includes_partitioners(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "stratified" in out
        assert "degree" in out
        assert "sharded" in out


class TestDosCond:
    def test_reduces_and_labels_cover_classes(self, tiny_split):
        config = DosCondConfig(outer_loops=1, match_steps=3,
                               adjacency_pretrain_steps=10, seed=0)
        condensed = DosCondReducer(config).reduce(tiny_split, 9)
        assert condensed.num_nodes == 9
        assert condensed.method == "doscond"
        assert np.unique(condensed.labels).size == tiny_split.num_classes

    def test_relay_steps_forced_zero(self):
        config = DosCondConfig(relay_steps=5)
        assert config.relay_steps == 0

    def test_no_mapping_like_gcond(self, tiny_split):
        config = DosCondConfig(outer_loops=1, match_steps=2,
                               adjacency_pretrain_steps=10, seed=0)
        condensed = DosCondReducer(config).reduce(tiny_split, 9)
        assert not condensed.supports_attachment()


class TestSmooth:
    @staticmethod
    def attached_cliques():
        edges = []
        for offset in (0, 4):
            for i in range(4):
                for j in range(i + 1, 4):
                    edges.append([offset + i, offset + j])
        adjacency = adjacency_from_edges(np.array(edges), 8)
        import scipy.sparse as sp
        inc = sp.csr_matrix((np.ones(2), ([0, 1], [0, 4])), shape=(2, 8))
        return attach_to_original(adjacency, np.zeros((8, 2)), inc,
                                  np.zeros((2, 2)))

    def test_smoothing_pulls_to_neighborhood(self):
        attached = self.attached_cliques()
        base_labels = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        # Both inductive nodes start uncertain; smoothing should commit them
        # to their attached clique's class.
        scores = np.full((2, 2), 0.5)
        smoothed = smooth_predictions(attached, base_labels, scores, 2,
                                      alpha=0.9, iterations=30)
        assert smoothed[0].argmax() == 0
        assert smoothed[1].argmax() == 1

    def test_correct_and_smooth_pipeline(self):
        attached = self.attached_cliques()
        base_labels = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        base_logits = np.zeros((8, 2))
        base_logits[np.arange(8), base_labels] = 3.0
        inductive_logits = np.zeros((2, 2))
        out = correct_and_smooth(attached, base_labels, base_logits,
                                 inductive_logits, 2)
        assert out.shape == (2, 2)
        assert out[0].argmax() == 0 and out[1].argmax() == 1

    def test_validation(self):
        attached = self.attached_cliques()
        from repro.errors import InferenceError
        with pytest.raises(InferenceError):
            smooth_predictions(attached, np.zeros(3, dtype=int),
                               np.zeros((2, 2)), 2)
        with pytest.raises(InferenceError):
            smooth_predictions(attached, np.zeros(8, dtype=int),
                               np.zeros((3, 2)), 2)
        with pytest.raises(InferenceError):
            smooth_predictions(attached, np.zeros(8, dtype=int),
                               np.zeros((2, 2)), 2, alpha=1.5)
