"""Experiment settings, pipeline caching, and harness schemas."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments import (
    ABLATIONS,
    EffortProfile,
    ExperimentContext,
    METHODS,
    current_profile,
    dataset_budgets,
    diagonal_dominance,
    format_mean_std,
    format_table,
    mean_std,
    method_names,
    prepare_dataset,
    run_fig34,
    run_fig5,
    run_fig6,
    run_fig7,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)

FAST = EffortProfile(
    name="test", train_epochs=15, train_patience=10, train_lr=0.05,
    outer_loops=1, match_steps=2, mapping_steps=4, relay_steps=1,
    seeds=(0,), inference_repeats=1)


@pytest.fixture(scope="module")
def context():
    prepared = prepare_dataset("tiny-sim", seed=1)
    return ExperimentContext(prepared, FAST)


class TestSettings:
    def test_method_matrix_matches_paper(self):
        assert METHODS["whole"].setting == "O->O"
        assert METHODS["gcond"].setting == "S->O"
        assert METHODS["mcond_os"].setting == "O->S"
        assert METHODS["mcond_so"].setting == "S->O"
        assert METHODS["mcond_ss"].setting == "S->S"
        for coreset in ("random", "degree", "herding", "kcenter", "vng"):
            assert METHODS[coreset].setting == "O->S"

    def test_method_names_order(self):
        assert method_names()[0] == "whole"

    def test_budgets_known_datasets(self):
        assert dataset_budgets("pubmed-sim") == (30, 60)
        with pytest.raises(ConfigError):
            dataset_budgets("unknown")

    def test_profile_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EFFORT", "quick")
        assert current_profile().name == "quick"
        monkeypatch.setenv("REPRO_EFFORT", "bogus")
        with pytest.raises(ConfigError):
            current_profile()

    def test_profile_requires_seeds(self):
        with pytest.raises(ConfigError):
            EffortProfile(name="x", train_epochs=1, train_patience=1,
                          train_lr=0.1, outer_loops=1, match_steps=1,
                          mapping_steps=1, relay_steps=1, seeds=(),
                          inference_repeats=1)


class TestReporting:
    def test_mean_std(self):
        mean, std = mean_std([1.0, 3.0])
        assert mean == 2.0 and std == 1.0

    def test_mean_std_empty(self):
        mean, std = mean_std([])
        assert np.isnan(mean)

    def test_format_mean_std_paper_style(self):
        assert format_mean_std([0.5, 0.5]) == "50.00±0.00"

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])


class TestPipeline:
    def test_reduce_cached(self, context):
        first = context.reduce("random", 9, seed=0)
        second = context.reduce("random", 9, seed=0)
        assert first is second

    def test_reduce_distinct_for_overrides(self, context):
        a = context.reduce("mcond", 9, seed=0)
        b = context.reduce("mcond", 9, seed=0, use_structure_loss=False)
        assert a is not b

    def test_train_cached(self, context):
        a = context.train("original", seed=0)
        b = context.train("original", seed=0)
        assert a is b

    def test_unknown_method_rejected(self, context):
        with pytest.raises(ConfigError):
            context.run_method("magic", 9)
        with pytest.raises(ConfigError):
            context.reduce("magic", 9)
        with pytest.raises(ConfigError):
            context.train("sideways")

    def test_run_method_produces_report(self, context):
        report = context.run_method("random", 9, batch_mode="node")
        assert 0.0 <= report.accuracy <= 1.0
        assert report.deployment == "synthetic"

    def test_reduction_ratio(self, context):
        ratio = context.prepared.reduction_ratio(9)
        assert ratio == pytest.approx(9 / context.prepared.original.num_nodes)


class TestHarnessSchemas:
    def test_table2_rows(self, context):
        rows = run_table2(context, budgets=[9], batch_modes=["node"],
                          methods=("whole", "random", "mcond_ss"))
        assert len(rows) == 3
        for row in rows:
            assert {"dataset", "batch", "budget", "method", "setting",
                    "accuracy", "display"} <= set(row)

    def test_fig34_rows_include_whole(self, context):
        rows = run_fig34(context, budgets=[9], batch_mode="node",
                         methods=("random", "mcond_ss"))
        methods = [row["method"] for row in rows]
        assert "whole" in methods
        for row in rows:
            assert row["time_ms"] > 0
            assert row["memory_mb"] > 0

    def test_table3_rows(self, context):
        rows = run_table3(context, budget=9, batch_modes=("node",))
        graphs = {row["graph"] for row in rows}
        assert graphs == {"O", "S"}
        for row in rows:
            assert 0.0 <= row["vanilla"] <= 1.0
            assert 0.0 <= row["lp"] <= 1.0
            assert 0.0 <= row["ep"] <= 1.0

    def test_table4_rows(self, context):
        rows = run_table4(context, budget=9, architectures=("gcn",),
                          batch_modes=("node",), hidden=8)
        assert len(rows) == 2  # SO and SS
        assert {row["method"] for row in rows} == {"mcond_so", "mcond_ss"}

    def test_table5_rows(self, context):
        rows = run_table5(context, budget=9, batch_modes=("node",))
        assert {row["ablation"] for row in rows} == set(ABLATIONS)

    def test_fig5_summary(self, context):
        out = run_fig5(context, budget=9)
        assert 0.0 <= out["trained_diagonal_dominance"] <= 1.0
        assert out["init_diagonal_dominance"] > 0.5
        assert len(out["losses_class_aware"]) > 0

    def test_fig6_rows_monotone_sparsity(self, context):
        rows = run_fig6(context, budget=9, deltas=(0.0, 0.05, 0.2))
        sparsities = [row["sparsity"] for row in rows]
        assert all(b >= a - 1e-12 for a, b in zip(sparsities, sparsities[1:]))

    def test_fig7_rows(self, context):
        rows = run_fig7(context, budget=9, lambdas=(0.1,), betas=(100.0,))
        assert len(rows) == 2
        assert {row["axis"] for row in rows} == {"lambda", "beta"}

    def test_diagonal_dominance_identity(self):
        assert diagonal_dominance(np.eye(3)) == 1.0
        assert diagonal_dominance(np.zeros((2, 2))) == 0.0
