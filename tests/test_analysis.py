"""The static-analysis pass: framework, five checkers, CLI, and the gate.

Fixture suites build tiny synthetic ``src/repro`` trees per checker
(positive + negative cases), the baseline file round-trips, the JSON
report validates against its ``bench-schema`` checker, and — the gate
itself — ``repro check`` must run clean on this repository at HEAD.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisContext,
    AnalysisError,
    build_report,
    check_analysis_report_schema,
    format_baseline,
    load_baseline,
    run_checkers,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_tree(tmp_path: Path, files: dict) -> Path:
    for rel, text in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
    return tmp_path


def findings(tmp_path: Path, files: dict, only: list):
    tree = make_tree(tmp_path, files)
    violations, _counts, _context = run_checkers(tree, only=only)
    return violations


# ----------------------------------------------------------------------
# Lock discipline
# ----------------------------------------------------------------------
LOCKED_CLASS = """\
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []

        def put(self, item):
            with self._lock:
                self._items.append(item)

        def {bad}(self, item):
            {body}
"""


class TestLockChecker:
    def _run(self, tmp_path, body, bad="rush"):
        return findings(tmp_path, {
            "src/repro/box.py": LOCKED_CLASS.format(bad=bad, body=body),
        }, ["locks"])

    def test_unlocked_mutation_of_guarded_attr_flagged(self, tmp_path):
        violations = self._run(tmp_path, "self._items.append(item)")
        assert [v.code for v in violations] == ["LOCK001"]
        assert "_items" in violations[0].message
        assert violations[0].path == "src/repro/box.py"

    def test_locked_mutation_passes(self, tmp_path):
        body = "with self._lock:\n                self._items.pop()"
        assert self._run(tmp_path, body) == []

    def test_plain_assignment_outside_lock_flagged(self, tmp_path):
        violations = self._run(tmp_path, "self._items = [item]")
        assert [v.code for v in violations] == ["LOCK001"]

    def test_caller_holds_docstring_exempts_helper(self, tmp_path):
        body = ('"""Append (caller holds the lock)."""\n'
                "            self._items.append(item)")
        assert self._run(tmp_path, body) == []

    def test_init_mutations_exempt(self, tmp_path):
        # the __init__ assignments in the template never trigger
        body = "with self._lock:\n                self._items.clear()"
        assert self._run(tmp_path, body) == []

    def test_inline_suppression_with_reason(self, tmp_path):
        body = ("self._items.append(item)"
                "  # repro-check: locks single-threaded test hook")
        assert self._run(tmp_path, body) == []

    def test_bare_suppression_marker_does_not_waive(self, tmp_path):
        body = "self._items.append(item)  # repro-check: locks"
        assert [v.code for v in self._run(tmp_path, body)] == ["LOCK001"]

    def test_explicit_guarded_comment_creates_the_contract(self, tmp_path):
        # no mutation ever happens under the lock, so only the comment
        # annotation can establish that _count is guarded
        violations = findings(tmp_path, {"src/repro/box.py": """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0  # guarded by _lock

                def bump(self):
                    self._count += 1
        """}, ["locks"])
        assert [v.code for v in violations] == ["LOCK001"]

    def test_condition_aliases_its_wrapped_lock(self, tmp_path):
        violations = findings(tmp_path, {"src/repro/box.py": """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._ready = threading.Condition(self._lock)
                    self._items = []

                def put(self, item):
                    with self._lock:
                        self._items.append(item)

                def drain(self):
                    with self._ready:
                        self._items.clear()
        """}, ["locks"])
        assert violations == []

    def test_deadlock_cycle_across_serving_classes(self, tmp_path):
        fleet = """\
            import threading

            from repro.serving.gateway import Gateway

            class Fleet:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.gateway = Gateway()

                def poke(self):
                    with self._lock:
                        self.gateway.poke()
        """
        gateway = """\
            import threading

            class Gateway:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.fleet = Fleet()

                def poke(self):
                    with self._lock:
                        self.fleet.poke()
        """
        violations = findings(tmp_path, {
            "src/repro/serving/fleet.py": fleet,
            "src/repro/serving/gateway.py": gateway,
        }, ["locks"])
        assert [v.code for v in violations] == ["LOCK002"]
        assert "deadlock" in violations[0].message

    def test_one_directional_nesting_is_no_cycle(self, tmp_path):
        fleet = """\
            import threading

            class Fleet:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.gateway = Gateway()

                def poke(self):
                    with self._lock:
                        self.gateway.poke()
        """
        gateway = """\
            import threading

            class Gateway:
                def __init__(self):
                    self._lock = threading.Lock()

                def poke(self):
                    with self._lock:
                        pass
        """
        assert findings(tmp_path, {
            "src/repro/serving/fleet.py": fleet,
            "src/repro/serving/gateway.py": gateway,
        }, ["locks"]) == []

    def test_live_serving_modules_hold_the_line(self):
        # regression pin for the lock-discipline sweep: the modules the
        # issue singles out must stay LOCK-clean from here on
        violations, _counts, _context = run_checkers(
            REPO_ROOT, only=["locks"])
        dirty = [v for v in violations if any(
            v.path.endswith(name) for name in (
                "serving/stats.py", "serving/queue.py",
                "telemetry/metrics.py", "serving/fleet.py"))]
        assert dirty == []


# ----------------------------------------------------------------------
# Error discipline
# ----------------------------------------------------------------------
class TestErrorChecker:
    def _run(self, tmp_path, body):
        return findings(tmp_path, {
            "src/repro/errors.py": "class ReproError(Exception):\n"
                                   "    pass\n"
                                   "class ShapeError(ReproError):\n"
                                   "    pass\n",
            "src/repro/mod.py": body,
        }, ["errors"])

    def test_stdlib_raise_flagged(self, tmp_path):
        violations = self._run(tmp_path, """\
            def f(x):
                raise ValueError(f"bad {x}")
        """)
        assert [v.code for v in violations] == ["ERR001"]
        assert "ValueError" in violations[0].message

    def test_project_error_subclass_passes(self, tmp_path):
        assert self._run(tmp_path, """\
            from repro.errors import ShapeError

            def f(x):
                raise ShapeError(f"bad {x}")
        """) == []

    def test_transitive_subclass_defined_elsewhere_passes(self, tmp_path):
        # mirrors TelemetryError: declared outside errors.py but still
        # part of the hierarchy, resolved project-wide
        assert self._run(tmp_path, """\
            from repro.errors import ShapeError

            class LocalError(ShapeError):
                pass

            def f():
                raise LocalError("nope")
        """) == []

    def test_stored_exception_reraise_passes(self, tmp_path):
        assert self._run(tmp_path, """\
            class Future:
                def result(self):
                    if self._error is not None:
                        raise self._error
        """) == []

    def test_protocol_methods_keep_their_exceptions(self, tmp_path):
        assert self._run(tmp_path, """\
            class Archive:
                def __getitem__(self, key):
                    raise KeyError(key)

                def __getattr__(self, name):
                    raise AttributeError(name)
        """) == []

    def test_protocol_exception_outside_protocol_flagged(self, tmp_path):
        violations = self._run(tmp_path, """\
            def fetch(key):
                raise KeyError(key)
        """)
        assert [v.code for v in violations] == ["ERR001"]

    def test_broad_except_without_reason_flagged(self, tmp_path):
        violations = self._run(tmp_path, """\
            def f():
                try:
                    return 1
                except Exception:
                    return None
        """)
        assert [v.code for v in violations] == ["ERR002"]

    def test_bare_except_flagged(self, tmp_path):
        violations = self._run(tmp_path, """\
            def f():
                try:
                    return 1
                except:
                    return None
        """)
        assert [v.code for v in violations] == ["ERR002"]
        assert "bare except" in violations[0].message

    def test_noqa_with_reason_waives(self, tmp_path):
        assert self._run(tmp_path, """\
            def f():
                try:
                    return 1
                except Exception:  # noqa: BLE001 — fallback is fine here
                    return None
        """) == []

    def test_noqa_without_reason_does_not_waive(self, tmp_path):
        violations = self._run(tmp_path, """\
            def f():
                try:
                    return 1
                except Exception:  # noqa: BLE001
                    return None
        """)
        assert [v.code for v in violations] == ["ERR002"]

    def test_cleanup_and_reraise_waives(self, tmp_path):
        assert self._run(tmp_path, """\
            def f(handle):
                try:
                    return handle.read()
                except Exception:
                    handle.close()
                    raise
        """) == []


# ----------------------------------------------------------------------
# Parity / dtype discipline
# ----------------------------------------------------------------------
class TestParityChecker:
    def test_literal_narrowing_in_parity_module_flagged(self, tmp_path):
        violations = findings(tmp_path, {
            "src/repro/serving/prepared.py": """\
                import numpy as np

                def shrink(x):
                    return x.astype(np.float32)
            """}, ["parity"])
        assert [v.code for v in violations] == ["PAR001"]
        assert "float32" in violations[0].message

    def test_dtype_keyword_and_string_spelling_flagged(self, tmp_path):
        violations = findings(tmp_path, {
            "src/repro/graph/stream.py": """\
                import numpy as np

                def build(n):
                    return np.zeros(n, dtype="int8")
            """}, ["parity"])
        assert [v.code for v in violations] == ["PAR001"]

    def test_precision_layer_marker_sanctions_function(self, tmp_path):
        violations = findings(tmp_path, {
            "src/repro/serving/prepared.py": """\
                import numpy as np

                def quantize(x):  # repro-check: precision-layer by design
                    return x.astype(np.int8)
            """}, ["parity"])
        assert violations == []

    def test_variable_dtype_passes(self, tmp_path):
        violations = findings(tmp_path, {
            "src/repro/serving/prepared.py": """\
                import numpy as np

                def cast(x, dtype):
                    return x.astype(dtype)
            """}, ["parity"])
        assert violations == []

    def test_narrowing_outside_parity_modules_ignored(self, tmp_path):
        violations = findings(tmp_path, {
            "src/repro/condense/stuff.py": """\
                import numpy as np

                def shrink(x):
                    return x.astype(np.float32)
            """}, ["parity"])
        assert violations == []

    def test_time_time_in_latency_path_flagged(self, tmp_path):
        violations = findings(tmp_path, {
            "src/repro/serving/stats.py": """\
                import time

                def stamp():
                    return time.time()
            """}, ["parity"])
        assert [v.code for v in violations] == ["PAR002"]
        assert "perf_counter" in violations[0].message

    def test_perf_counter_passes(self, tmp_path):
        violations = findings(tmp_path, {
            "src/repro/telemetry/t.py": """\
                import time

                def stamp():
                    return time.perf_counter()
            """}, ["parity"])
        assert violations == []


# ----------------------------------------------------------------------
# Registry drift
# ----------------------------------------------------------------------
REGISTRY_TREE = """\
    class Registry(dict):
        def register(self, name, entry, overwrite=False):
            self[name] = entry

    THINGS = Registry()

    def register_thing(name, *, description="", overwrite=False):
        def wrap(fn):
            THINGS.register(name, (fn, description), overwrite=overwrite)
            return fn
        return wrap

    def register_plain(name):
        def wrap(cls):
            THINGS.register(name, cls)
            return cls
        return wrap
"""


class TestRegistryChecker:
    def _run(self, tmp_path, usage, cli="from repro.reg import THINGS\n"):
        files = {"src/repro/reg.py": REGISTRY_TREE,
                 "src/repro/use.py": usage}
        if cli is not None:
            files["src/repro/cli.py"] = cli
        return findings(tmp_path, files, ["registries"])

    def test_described_registration_passes(self, tmp_path):
        assert self._run(tmp_path, """\
            from repro.reg import register_thing

            @register_thing("good", description="does the thing")
            def good():
                return 1
        """) == []

    def test_missing_description_flagged(self, tmp_path):
        violations = self._run(tmp_path, """\
            from repro.reg import register_thing

            @register_thing("bad")
            def bad():
                return 1
        """)
        assert [v.code for v in violations] == ["REG001"]
        assert "no description" in violations[0].message

    def test_empty_description_flagged(self, tmp_path):
        violations = self._run(tmp_path, """\
            from repro.reg import register_thing

            @register_thing("bad", description="")
            def bad():
                return 1
        """)
        assert [v.code for v in violations] == ["REG001"]

    def test_docstring_satisfies_descriptionless_registrar(self, tmp_path):
        assert self._run(tmp_path, """\
            from repro.reg import register_plain

            @register_plain("good")
            class Good:
                \"\"\"A documented entry.\"\"\"
        """) == []

    def test_missing_docstring_flagged_for_plain_registrar(self, tmp_path):
        violations = self._run(tmp_path, """\
            from repro.reg import register_plain

            @register_plain("bad")
            class Bad:
                pass
        """)
        assert [v.code for v in violations] == ["REG001"]
        assert "docstring" in violations[0].message

    def test_unreachable_registry_flagged(self, tmp_path):
        violations = self._run(tmp_path, """\
            from repro.reg import register_thing

            @register_thing("good", description="fine")
            def good():
                return 1
        """, cli="print('no registries here')\n")
        assert [v.code for v in violations] == ["REG002"]
        assert "THINGS" in violations[0].message

    def test_fixture_tree_without_cli_skips_reachability(self, tmp_path):
        assert self._run(tmp_path, """\
            from repro.reg import register_thing

            @register_thing("good", description="fine")
            def good():
                return 1
        """, cli=None) == []


# ----------------------------------------------------------------------
# Telemetry naming
# ----------------------------------------------------------------------
class TestNamingChecker:
    def _run(self, tmp_path, call):
        return findings(tmp_path, {
            "src/repro/telemetry/use.py": f"""\
                def wire(registry):
                    {call}
            """}, ["naming"])

    def test_convention_names_pass(self, tmp_path):
        assert self._run(
            tmp_path,
            'registry.counter("repro_fleet_requests_total", "served")',
        ) == []

    def test_bad_prefix_flagged(self, tmp_path):
        violations = self._run(
            tmp_path, 'registry.counter("fleet_requests_total", "x")')
        assert [v.code for v in violations] == ["NAM001"]

    def test_unknown_component_flagged(self, tmp_path):
        violations = self._run(
            tmp_path, 'registry.counter("repro_widget_requests_total", "x")')
        assert [v.code for v in violations] == ["NAM002"]

    def test_counter_without_total_flagged(self, tmp_path):
        violations = self._run(
            tmp_path, 'registry.counter("repro_fleet_requests", "x")')
        assert [v.code for v in violations] == ["NAM003"]
        assert "_total" in violations[0].message

    def test_histogram_without_seconds_flagged(self, tmp_path):
        violations = self._run(
            tmp_path, 'registry.histogram("repro_gateway_latency", "x")')
        assert [v.code for v in violations] == ["NAM003"]

    def test_gauge_with_reserved_suffix_flagged(self, tmp_path):
        violations = self._run(
            tmp_path, 'registry.gauge("repro_runtime_queue_total", "x")')
        assert [v.code for v in violations] == ["NAM003"]

    def test_gauge_plain_name_passes(self, tmp_path):
        assert self._run(
            tmp_path, 'registry.gauge("repro_runtime_queue_depth", "x")',
        ) == []

    def test_non_literal_names_ignored(self, tmp_path):
        assert self._run(tmp_path, "registry.counter(name, 'x')") == []


# ----------------------------------------------------------------------
# Baseline round-trip, report schema, CLI
# ----------------------------------------------------------------------
VIOLATING_TREE = {
    "src/repro/mod.py": """\
        def f(x):
            raise ValueError(f"bad {x}")
    """,
}


class TestBaselineAndReport:
    def test_baseline_round_trip_suppresses_known_findings(self, tmp_path):
        tree = make_tree(tmp_path, VIOLATING_TREE)
        violations, counts, context = run_checkers(tree, only=["errors"])
        assert len(violations) == 1
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(format_baseline(violations))
        baseline = load_baseline(baseline_file)
        assert baseline == {violations[0].key()}
        report = build_report(violations, counts, context, baseline)
        assert report["clean"] and report["suppressed"] == 1

    def test_baseline_key_is_line_number_stable(self, tmp_path):
        tree = make_tree(tmp_path, VIOLATING_TREE)
        violations, _counts, _context = run_checkers(tree, only=["errors"])
        baseline = set(load_baseline_text(format_baseline(violations)))
        source = tree / "src/repro/mod.py"
        source.write_text("# a new leading comment\n" + source.read_text())
        moved, _counts, _context = run_checkers(tree, only=["errors"])
        assert moved[0].line == violations[0].line + 1
        assert moved[0].key() in baseline

    def test_missing_and_malformed_baselines_raise(self, tmp_path):
        with pytest.raises(AnalysisError):
            load_baseline(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(AnalysisError):
            load_baseline(bad)

    def test_report_schema_accepts_real_report(self, tmp_path):
        tree = make_tree(tmp_path, VIOLATING_TREE)
        violations, counts, context = run_checkers(tree, only=["errors"])
        report = build_report(violations, counts, context)
        check_analysis_report_schema(report)

    @pytest.mark.parametrize("mutate", [
        lambda r: r.pop("violations"),
        lambda r: r.update(kind="serving-benchmark"),
        lambda r: r.update(schema_version=99),
        lambda r: r.update(clean=True),
        lambda r: r["violations"][0].pop("line"),
        lambda r: r.update(checkers={}),
    ])
    def test_report_schema_rejects_drift(self, tmp_path, mutate):
        tree = make_tree(tmp_path, VIOLATING_TREE)
        violations, counts, context = run_checkers(tree, only=["errors"])
        report = build_report(violations, counts, context)
        mutate(report)
        with pytest.raises(AnalysisError):
            check_analysis_report_schema(report)

    def test_unknown_checker_name_raises(self, tmp_path):
        tree = make_tree(tmp_path, VIOLATING_TREE)
        with pytest.raises(Exception) as excinfo:
            run_checkers(tree, only=["nope"])
        assert "nope" in str(excinfo.value)


def load_baseline_text(text: str) -> set:
    return set(json.loads(text)["entries"])


class TestCheckCli:
    def test_violations_exit_1_and_json_report(self, tmp_path, capsys):
        tree = make_tree(tmp_path, VIOLATING_TREE)
        out = tmp_path / "report.json"
        code = main(["check", "--root", str(tree), "--format", "json",
                     "--only", "errors", "--output", str(out)])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report == json.loads(out.read_text())
        assert report["kind"] == "analysis-report"
        assert [v["code"] for v in report["violations"]] == ["ERR001"]

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        tree = make_tree(tmp_path, VIOLATING_TREE)
        baseline = tmp_path / "baseline.json"
        assert main(["check", "--root", str(tree), "--only", "errors",
                     "--write-baseline", str(baseline)]) == 0
        assert main(["check", "--root", str(tree), "--only", "errors",
                     "--baseline", str(baseline)]) == 0
        summary = capsys.readouterr().out.splitlines()[-1]
        assert "1 baseline-suppressed" in summary

    def test_disable_skips_a_checker(self, tmp_path, capsys):
        tree = make_tree(tmp_path, VIOLATING_TREE)
        code = main(["check", "--root", str(tree),
                     "--disable", "errors", "--format", "json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert "errors" not in report["checkers"]
        assert report["clean"]

    def test_unknown_checker_exits_2(self, tmp_path):
        tree = make_tree(tmp_path, VIOLATING_TREE)
        assert main(["check", "--root", str(tree),
                     "--only", "bogus"]) == 2

    def test_text_report_names_file_and_code(self, tmp_path, capsys):
        tree = make_tree(tmp_path, VIOLATING_TREE)
        assert main(["check", "--root", str(tree),
                     "--only", "errors"]) == 1
        out = capsys.readouterr().out
        assert "src/repro/mod.py" in out and "ERR001" in out


# ----------------------------------------------------------------------
# The gate: this repository must be clean at HEAD
# ----------------------------------------------------------------------
class TestRepoIsClean:
    def test_repro_check_runs_clean_at_head(self):
        violations, counts, context = run_checkers(REPO_ROOT)
        assert violations == [], "\n".join(v.render() for v in violations)
        # all five project checkers plus docs actually ran
        assert set(counts) == {"locks", "errors", "parity",
                               "registries", "naming", "docs"}
        assert len(context.files) > 50

    def test_checkers_registry_is_reachable_from_repro_list(self):
        # REG002's own contract, asserted directly: the CLI source must
        # reference the CHECKERS registry that backs 'repro check'
        cli_text = (REPO_ROOT / "src/repro/cli.py").read_text()
        assert "CHECKERS" in cli_text
