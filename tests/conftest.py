"""Shared fixtures: small deterministic graphs, splits, and condensed graphs."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.condense import CondensedGraph, MCondConfig, MCondReducer
from repro.graph import Graph, load_dataset
from repro.graph.datasets import InductiveSplit


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def path_graph() -> Graph:
    """A 5-node path graph with 2-d features and 2 classes."""
    edges = np.array([[0, 1], [1, 2], [2, 3], [3, 4]])
    adj = sp.coo_matrix(
        (np.ones(4), (edges[:, 0], edges[:, 1])), shape=(5, 5)).tocsr()
    adj = adj.maximum(adj.T)
    features = np.arange(10, dtype=np.float64).reshape(5, 2)
    labels = np.array([0, 0, 0, 1, 1])
    return Graph(adj, features, labels)


@pytest.fixture(scope="session")
def tiny_split() -> InductiveSplit:
    """The tiny-sim dataset (300 nodes), shared across the session."""
    return load_dataset("tiny-sim", seed=7)


@pytest.fixture(scope="session")
def tiny_condensed(tiny_split) -> CondensedGraph:
    """A small MCond condensation of tiny-sim (session-cached for speed)."""
    config = MCondConfig(outer_loops=1, match_steps=3, mapping_steps=5,
                        adjacency_pretrain_steps=30, seed=3)
    return MCondReducer(config).reduce(tiny_split, 9)


@pytest.fixture(scope="session")
def tiny_mcond_result(tiny_split):
    """MCond result object with histories (session-cached)."""
    config = MCondConfig(outer_loops=1, match_steps=3, mapping_steps=5,
                        adjacency_pretrain_steps=30, seed=4)
    reducer = MCondReducer(config)
    reducer.reduce(tiny_split, 9)
    return reducer.last_result
