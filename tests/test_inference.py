"""Inductive inference engine: deployments, batch modes, accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.condense import CondensedGraph
from repro.inference import (
    InductiveServer,
    compression,
    deployment_storage_bytes,
    graph_storage_bytes,
    run_inference,
    speedup,
    time_callable,
)
from repro.nn import make_model


@pytest.fixture(scope="module")
def served(tiny_split_module, tiny_condensed_module):
    model = make_model("sgc", tiny_split_module.original.feature_dim,
                       tiny_split_module.num_classes, seed=0)
    return model


@pytest.fixture(scope="module")
def tiny_split_module():
    from repro.graph import load_dataset
    return load_dataset("tiny-sim", seed=7)


@pytest.fixture(scope="module")
def tiny_condensed_module(tiny_split_module):
    from repro.condense import MCondConfig, MCondReducer
    config = MCondConfig(outer_loops=1, match_steps=3, mapping_steps=5,
                        adjacency_pretrain_steps=30, seed=3)
    return MCondReducer(config).reduce(tiny_split_module, 9)


class TestServerValidation:
    def test_unknown_deployment(self, served, tiny_split_module):
        with pytest.raises(InferenceError):
            InductiveServer(served, "edge", tiny_split_module.original)

    def test_synthetic_requires_condensed(self, served, tiny_split_module):
        with pytest.raises(InferenceError):
            InductiveServer(served, "synthetic", tiny_split_module.original)

    def test_synthetic_requires_mapping(self, served, tiny_split_module):
        no_mapping = CondensedGraph(np.eye(3), np.ones((3,
                                    tiny_split_module.original.feature_dim)),
                                    np.zeros(3, dtype=int))
        with pytest.raises(InferenceError):
            InductiveServer(served, "synthetic", tiny_split_module.original,
                            no_mapping)

    def test_invalid_batch_mode(self, served, tiny_split_module,
                                tiny_condensed_module):
        server = InductiveServer(served, "original", tiny_split_module.original)
        batch = tiny_split_module.incremental_batch("test")
        with pytest.raises(InferenceError):
            server.attach(batch, "stream")


class TestServing:
    def test_original_report_fields(self, served, tiny_split_module):
        batch = tiny_split_module.incremental_batch("test")
        report = run_inference(served, "original", tiny_split_module.original,
                               batch, batch_size=32)
        assert report.num_nodes == batch.num_nodes
        assert report.num_batches == int(np.ceil(batch.num_nodes / 32))
        assert report.logits.shape == (batch.num_nodes,
                                       tiny_split_module.num_classes)
        assert 0.0 <= report.accuracy <= 1.0
        assert report.mean_batch_seconds > 0
        assert report.memory_bytes > 0

    def test_synthetic_memory_smaller_after_scale(self, served,
                                                  tiny_split_module,
                                                  tiny_condensed_module):
        batch = tiny_split_module.incremental_batch("test")
        original = run_inference(served, "original",
                                 tiny_split_module.original, batch)
        synthetic = run_inference(served, "synthetic",
                                  tiny_split_module.original, batch,
                                  condensed=tiny_condensed_module)
        # The synthetic deployment's attached graph is far smaller; its
        # footprint is dominated by the (sparsified) mapping + batch features.
        assert synthetic.logits.shape == original.logits.shape

    def test_node_batch_ignores_intra_edges(self, served, tiny_split_module):
        batch = tiny_split_module.incremental_batch("test")
        server = InductiveServer(served, "original", tiny_split_module.original)
        graph_attached = server.attach(batch, "graph")
        node_attached = server.attach(batch, "node")
        base = tiny_split_module.original.num_nodes
        intra_graph = graph_attached.adjacency[base:, base:]
        intra_node = node_attached.adjacency[base:, base:]
        assert intra_node.nnz == 0
        assert intra_graph.nnz == batch.intra.nnz

    def test_node_and_graph_accuracy_both_reasonable(self, served,
                                                     tiny_split_module):
        batch = tiny_split_module.incremental_batch("test")
        server = InductiveServer(served, "original", tiny_split_module.original)
        graph_report = server.run(batch, batch_mode="graph")
        node_report = server.run(batch, batch_mode="node")
        assert graph_report.batch_mode == "graph"
        assert node_report.batch_mode == "node"

    def test_batching_close_to_single_shot(self, served, tiny_split_module):
        # Chunked serving changes the augmented graph's degrees slightly
        # (fewer simultaneous inductive nodes), so logits are close but not
        # bit-identical — accuracy must stay in the same regime.
        batch = tiny_split_module.incremental_batch("val")
        server = InductiveServer(served, "original", tiny_split_module.original)
        single = server.run(batch, batch_size=10 ** 6, batch_mode="node")
        chunked = server.run(batch, batch_size=7, batch_mode="node")
        assert single.logits.shape == chunked.logits.shape
        assert abs(single.accuracy - chunked.accuracy) <= 0.15
        assert chunked.num_batches > single.num_batches

    def test_empty_batch_rejected(self, served, tiny_split_module):
        batch = tiny_split_module.incremental_batch("test").subset(
            np.array([], dtype=int))
        server = InductiveServer(served, "original", tiny_split_module.original)
        with pytest.raises(InferenceError):
            server.run(batch)

    def test_report_unit_helpers(self, served, tiny_split_module):
        batch = tiny_split_module.incremental_batch("val")
        report = run_inference(served, "original", tiny_split_module.original,
                               batch)
        assert report.mean_batch_milliseconds == pytest.approx(
            report.mean_batch_seconds * 1e3)
        assert report.memory_megabytes == pytest.approx(
            report.memory_bytes / 2**20)


class TestBenchmarkHelpers:
    def test_time_callable_stats(self):
        stats = time_callable(lambda: sum(range(1000)), repeats=3, warmup=1)
        assert stats.repeats == 3
        assert stats.min_seconds <= stats.median_seconds <= stats.max_seconds
        assert stats.mean_milliseconds == pytest.approx(
            stats.mean_seconds * 1e3)

    def test_time_callable_validation(self):
        with pytest.raises(InferenceError):
            time_callable(lambda: None, repeats=0)

    def test_speedup_compression(self):
        assert speedup(10.0, 2.0) == 5.0
        assert compression(100, 25) == 4.0
        with pytest.raises(InferenceError):
            speedup(1.0, 0.0)
        with pytest.raises(InferenceError):
            compression(1, 0)

    def test_graph_storage(self, tiny_split_module):
        bytes_full = graph_storage_bytes(tiny_split_module.full)
        bytes_orig = graph_storage_bytes(tiny_split_module.original)
        assert bytes_full > bytes_orig

    def test_deployment_storage(self, tiny_split_module, tiny_condensed_module):
        original = deployment_storage_bytes("original",
                                            tiny_split_module.original)
        synthetic = deployment_storage_bytes("synthetic",
                                             tiny_split_module.original,
                                             tiny_condensed_module)
        assert original > 0 and synthetic > 0
        with pytest.raises(InferenceError):
            deployment_storage_bytes("synthetic", tiny_split_module.original)
        with pytest.raises(InferenceError):
            deployment_storage_bytes("other", tiny_split_module.original)
