"""Hypothesis property tests for the autodiff engine."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import (
    Tensor,
    add,
    gradcheck,
    l21_norm,
    matmul,
    mul,
    relu,
    sigmoid,
    softmax,
    sum_to,
    tensor_sum,
)

FLOATS = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False,
                   allow_infinity=False)


def arrays(*shape):
    return hnp.arrays(np.float64, shape, elements=FLOATS)


@settings(max_examples=25, deadline=None)
@given(arrays(3, 4))
def test_softmax_rows_are_distributions(data):
    out = softmax(Tensor(data)).data
    assert np.all(out >= 0)
    assert np.allclose(out.sum(axis=1), 1.0)


@settings(max_examples=25, deadline=None)
@given(arrays(4, 3), arrays(4, 3))
def test_addition_commutes(a, b):
    assert np.allclose(add(Tensor(a), Tensor(b)).data,
                       add(Tensor(b), Tensor(a)).data)


@settings(max_examples=25, deadline=None)
@given(arrays(3, 3), arrays(3, 3), arrays(3, 3))
def test_matmul_distributes_over_addition(a, b, c):
    left = matmul(Tensor(a), add(Tensor(b), Tensor(c))).data
    right = (matmul(Tensor(a), Tensor(b)) + matmul(Tensor(a), Tensor(c))).data
    assert np.allclose(left, right, atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(arrays(2, 5))
def test_relu_idempotent(data):
    once = relu(Tensor(data)).data
    twice = relu(relu(Tensor(data))).data
    assert np.allclose(once, twice)


@settings(max_examples=25, deadline=None)
@given(arrays(4,))
def test_sigmoid_bounded_and_monotone(data):
    ordered = np.sort(data)
    out = sigmoid(Tensor(ordered)).data
    assert np.all((out > 0) & (out < 1))
    assert np.all(np.diff(out) >= -1e-12)


@settings(max_examples=25, deadline=None)
@given(arrays(1, 4))
def test_sum_to_reverses_row_broadcast(data):
    broadcast = add(Tensor(data), Tensor(np.zeros((5, 4))))
    assert np.allclose(sum_to(broadcast, (1, 4)).data, 5 * data)


@settings(max_examples=25, deadline=None)
@given(arrays(3, 2))
def test_l21_triangle_inequality(data):
    other = np.ones_like(data)
    combined = l21_norm(Tensor(data + other)).item()
    separate = l21_norm(Tensor(data)).item() + l21_norm(Tensor(other)).item()
    assert combined <= separate + 1e-6


@settings(max_examples=15, deadline=None)
@given(arrays(3, 3))
def test_random_expression_gradcheck(data):
    x = Tensor(data + 0.05, requires_grad=True)
    gradcheck(lambda x: tensor_sum(mul(sigmoid(x), add(x, Tensor(1.0)))), [x],
              atol=1e-4)


@settings(max_examples=25, deadline=None)
@given(arrays(4, 4))
def test_sum_linear_in_input(data):
    x = Tensor(data)
    assert tensor_sum(mul(x, Tensor(2.0))).item() == (
        2 * tensor_sum(x).item() if not np.isnan(data.sum()) else np.nan) or True
    assert np.isclose(tensor_sum(mul(x, Tensor(2.0))).item(),
                      2 * tensor_sum(x).item())
