"""End-to-end integration tests asserting the paper's qualitative claims
on the tiny fixture dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.condense import MCondConfig, MCondReducer, make_coreset
from repro.experiments import ExperimentContext, EffortProfile, prepare_dataset
from repro.graph import load_dataset, symmetric_normalize
from repro.inference import run_inference
from repro.nn import TrainConfig, make_model, train_node_classifier
from repro.propagation import label_propagation, softmax_rows

PROFILE = EffortProfile(
    name="integration", train_epochs=40, train_patience=15, train_lr=0.05,
    outer_loops=2, match_steps=5, mapping_steps=12, relay_steps=2,
    seeds=(0,), inference_repeats=1)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(prepare_dataset("tiny-sim", seed=2), PROFILE)


class TestPaperClaims:
    def test_mcond_serves_on_synthetic_graph(self, context):
        """The headline capability: inductive inference without the original
        graph, at accuracy comparable to full-graph serving."""
        whole = context.run_method("whole", 15, batch_mode="graph")
        mcond = context.run_method("mcond_ss", 15, batch_mode="graph")
        assert mcond.accuracy >= whole.accuracy - 0.15

    def test_mcond_beats_random_coreset(self, context):
        random_report = context.run_method("random", 15, batch_mode="graph")
        mcond_report = context.run_method("mcond_os", 15, batch_mode="graph")
        assert mcond_report.accuracy >= random_report.accuracy - 0.02

    def test_gcond_cannot_attach_but_mcond_can(self, context):
        gcond = context.reduce("gcond", 15)
        mcond = context.reduce("mcond", 15)
        assert not gcond.supports_attachment()
        assert mcond.supports_attachment()

    def test_synthetic_graph_much_smaller(self, context):
        from repro.inference import deployment_storage_bytes
        mcond = context.reduce("mcond", 15)
        original_bytes = deployment_storage_bytes(
            "original", context.prepared.original)
        synthetic_bytes = deployment_storage_bytes(
            "synthetic", context.prepared.original, mcond)
        assert synthetic_bytes < original_bytes

    def test_graph_batch_at_least_node_batch_on_average(self, context):
        """Graph batches carry extra edges; accuracy should not collapse."""
        graph_mode = context.run_method("mcond_ss", 15, batch_mode="graph")
        node_mode = context.run_method("mcond_ss", 15, batch_mode="node")
        assert abs(graph_mode.accuracy - node_mode.accuracy) < 0.2

    def test_label_propagation_calibrates_synthetic_serving(self, context):
        from repro.inference import InductiveServer
        condensed = context.reduce("mcond", 15)
        model = context.train("synthetic", condensed=condensed,
                              validate_deployment="synthetic")
        server = InductiveServer(model, "synthetic",
                                 context.prepared.original, condensed)
        batch = context.prepared.test_batch
        attached = server.attach(batch, "graph")
        operator = symmetric_normalize(attached.adjacency)
        from repro.tensor import Tensor, no_grad
        with no_grad():
            logits = model(operator, Tensor(attached.features)).data
        vanilla = (logits[attached.base_size:].argmax(1) == batch.labels).mean()
        scores = label_propagation(
            attached, condensed.labels, context.prepared.split.num_classes,
            prior=softmax_rows(logits[attached.base_size:]))
        lp_acc = (scores.argmax(1) == batch.labels).mean()
        assert lp_acc >= vanilla - 0.05

    def test_full_pipeline_from_scratch(self):
        """Exercise the whole stack without the ExperimentContext sugar."""
        split = load_dataset("tiny-sim", seed=5, scale=0.7)
        config = MCondConfig(outer_loops=1, match_steps=3, mapping_steps=8,
                             adjacency_pretrain_steps=40, seed=0)
        condensed = MCondReducer(config).reduce(split, 9)

        operator = condensed.normalized_adjacency()
        model = make_model("sgc", split.original.feature_dim,
                           split.num_classes, seed=0)
        train_node_classifier(model, operator, condensed.features,
                              condensed.labels,
                              np.arange(condensed.num_nodes),
                              config=TrainConfig(epochs=40, patience=40))
        report = run_inference(model, "synthetic", split.original,
                               split.incremental_batch("test"),
                               condensed=condensed)
        assert report.accuracy > 1.5 / split.num_classes  # well above chance

    def test_coreset_pipeline_from_scratch(self):
        split = load_dataset("tiny-sim", seed=6, scale=0.7)
        condensed = make_coreset("kcenter", seed=0).reduce(split, 9)
        operator = symmetric_normalize(split.original.adjacency)
        model = make_model("sgc", split.original.feature_dim,
                           split.num_classes, seed=0)
        train_node_classifier(model, operator, split.original.features,
                              split.original.labels,
                              split.labeled_in_original,
                              config=TrainConfig(epochs=40, patience=40))
        report = run_inference(model, "synthetic", split.original,
                               split.incremental_batch("test"),
                               condensed=condensed)
        assert report.accuracy > 1.0 / split.num_classes
