"""GNN models and the training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import symmetric_normalize
from repro.nn import (
    MODEL_REGISTRY,
    TrainConfig,
    evaluate_accuracy,
    evaluate_logits,
    make_model,
    train_node_classifier,
)
from repro.tensor import Tensor

ALL_MODELS = sorted(MODEL_REGISTRY)


@pytest.fixture(scope="module")
def operator(tiny_split_module):
    return symmetric_normalize(tiny_split_module.original.adjacency)


@pytest.fixture(scope="module")
def tiny_split_module():
    from repro.graph import load_dataset
    return load_dataset("tiny-sim", seed=11, scale=0.5)


class TestModelForward:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_forward_shapes(self, name, tiny_split_module, operator):
        graph = tiny_split_module.original
        model = make_model(name, graph.feature_dim,
                           tiny_split_module.num_classes, seed=0, **(
                               {} if name == "sgc" else {"hidden": 8}))
        logits = model(operator, Tensor(graph.features))
        assert logits.shape == (graph.num_nodes, tiny_split_module.num_classes)

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_embed_row_count(self, name, tiny_split_module, operator):
        graph = tiny_split_module.original
        model = make_model(name, graph.feature_dim,
                           tiny_split_module.num_classes, seed=0, **(
                               {} if name == "sgc" else {"hidden": 8}))
        embedding = model.embed(operator, Tensor(graph.features))
        assert embedding.shape[0] == graph.num_nodes

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError):
            make_model("transformer", 4, 2)

    def test_sgc_embed_is_propagation(self, tiny_split_module, operator):
        graph = tiny_split_module.original
        model = make_model("sgc", graph.feature_dim,
                           tiny_split_module.num_classes, k_hops=2)
        embedding = model.embed(operator, Tensor(graph.features)).data
        expected = operator @ (operator @ graph.features)
        assert np.allclose(embedding, expected)

    def test_mlp_ignores_operator(self, tiny_split_module, operator):
        graph = tiny_split_module.original
        model = make_model("mlp", graph.feature_dim,
                           tiny_split_module.num_classes, hidden=8)
        model.eval()
        with_op = model(operator, Tensor(graph.features)).data
        without = model(np.zeros((graph.num_nodes, graph.num_nodes)),
                        Tensor(graph.features)).data
        assert np.allclose(with_op, without)

    def test_dropout_active_only_in_training(self, tiny_split_module, operator):
        graph = tiny_split_module.original
        model = make_model("gcn", graph.feature_dim,
                           tiny_split_module.num_classes, hidden=8,
                           dropout_rate=0.5)
        model.eval()
        a = model(operator, Tensor(graph.features)).data
        b = model(operator, Tensor(graph.features)).data
        assert np.allclose(a, b)
        model.train()
        c = model(operator, Tensor(graph.features)).data
        d = model(operator, Tensor(graph.features)).data
        assert not np.allclose(c, d)

    def test_invalid_dropout_rejected(self):
        with pytest.raises(ConfigError):
            make_model("gcn", 4, 2, dropout_rate=1.0)

    def test_gcn_needs_two_layers(self):
        with pytest.raises(ConfigError):
            make_model("gcn", 4, 2, num_layers=1)


class TestTrainer:
    def test_training_reduces_loss(self, tiny_split_module, operator):
        graph = tiny_split_module.original
        model = make_model("sgc", graph.feature_dim,
                           tiny_split_module.num_classes, seed=0)
        result = train_node_classifier(
            model, operator, graph.features, graph.labels,
            tiny_split_module.labeled_in_original,
            config=TrainConfig(epochs=30, patience=30))
        assert result.losses[-1] < result.losses[0]

    def test_validator_drives_best_restore(self, tiny_split_module, operator):
        graph = tiny_split_module.original
        model = make_model("sgc", graph.feature_dim,
                           tiny_split_module.num_classes, seed=0)
        scores = iter([0.9, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1])
        snapshots = []

        def validator(m):
            snapshots.append(m.state_dict())
            return next(scores)

        result = train_node_classifier(
            model, operator, graph.features, graph.labels,
            tiny_split_module.labeled_in_original, validator=validator,
            config=TrainConfig(epochs=10, patience=3, eval_every=1))
        assert result.best_epoch == 0
        assert result.epochs_run == 4  # stopped after patience exhausted
        # Weights restored to the best (first) snapshot.
        for name, value in model.state_dict().items():
            assert np.allclose(value, snapshots[0][name])

    def test_empty_train_idx_rejected(self, tiny_split_module, operator):
        graph = tiny_split_module.original
        model = make_model("sgc", graph.feature_dim, tiny_split_module.num_classes)
        with pytest.raises(ConfigError):
            train_node_classifier(model, operator, graph.features,
                                  graph.labels, np.array([], dtype=int))

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            TrainConfig(epochs=0)
        with pytest.raises(ConfigError):
            TrainConfig(patience=0)

    def test_training_beats_chance(self, tiny_split_module, operator):
        graph = tiny_split_module.original
        model = make_model("sgc", graph.feature_dim,
                           tiny_split_module.num_classes, seed=0)
        train_node_classifier(model, operator, graph.features, graph.labels,
                              tiny_split_module.labeled_in_original,
                              config=TrainConfig(epochs=60, patience=60, lr=0.05))
        acc = evaluate_accuracy(model, operator, graph.features, graph.labels)
        assert acc > 0.6

    def test_evaluate_logits_shape(self, tiny_split_module, operator):
        graph = tiny_split_module.original
        model = make_model("sgc", graph.feature_dim, tiny_split_module.num_classes)
        logits = evaluate_logits(model, operator, graph.features)
        assert logits.shape == (graph.num_nodes, tiny_split_module.num_classes)

    def test_evaluate_accuracy_subset(self, tiny_split_module, operator):
        graph = tiny_split_module.original
        model = make_model("sgc", graph.feature_dim, tiny_split_module.num_classes)
        subset = np.arange(10)
        value = evaluate_accuracy(model, operator, graph.features,
                                  graph.labels, subset)
        assert 0.0 <= value <= 1.0
