"""SBM generator and the dataset registry / inductive split protocol."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DatasetError
from repro.graph import (
    DATASET_SPECS,
    SbmConfig,
    dataset_names,
    edge_homophily,
    generate_sbm_graph,
    load_dataset,
    make_split,
    smooth_features,
)


def small_config(**overrides):
    base = dict(class_sizes=np.array([40, 40, 40]), feature_dim=8,
                avg_degree=6.0, homophily=0.8, feature_noise=1.0,
                center_scale=0.5, smoothing_rounds=0)
    base.update(overrides)
    return SbmConfig(**base)


class TestSbmGenerator:
    def test_node_and_class_counts(self):
        graph = generate_sbm_graph(small_config(), seed=0)
        assert graph.num_nodes == 120
        assert graph.num_classes == 3
        assert np.array_equal(np.sort(np.unique(graph.labels)), [0, 1, 2])

    def test_deterministic_by_seed(self):
        a = generate_sbm_graph(small_config(), seed=5)
        b = generate_sbm_graph(small_config(), seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_sbm_graph(small_config(), seed=1)
        b = generate_sbm_graph(small_config(), seed=2)
        assert a != b

    def test_homophily_ordering(self):
        high = generate_sbm_graph(small_config(homophily=0.9), seed=0)
        low = generate_sbm_graph(small_config(homophily=0.2), seed=0)
        assert (edge_homophily(high.adjacency, high.labels)
                > edge_homophily(low.adjacency, low.labels))

    def test_no_self_loops_and_symmetric(self):
        graph = generate_sbm_graph(small_config(), seed=3)
        assert not graph.has_self_loops()
        assert graph.is_symmetric()

    def test_average_degree_close_to_target(self):
        graph = generate_sbm_graph(small_config(avg_degree=8.0), seed=0)
        measured = graph.num_edges / graph.num_nodes
        assert 5.0 <= measured <= 8.5

    def test_label_noise_flips_labels(self):
        clean = generate_sbm_graph(small_config(label_noise=0.0), seed=9)
        noisy = generate_sbm_graph(small_config(label_noise=0.3), seed=9)
        flipped = (clean.labels != noisy.labels).mean()
        assert 0.15 <= flipped <= 0.45

    def test_degree_exponent_creates_skew(self):
        flat = generate_sbm_graph(small_config(avg_degree=10), seed=0)
        skewed = generate_sbm_graph(
            small_config(avg_degree=10, degree_exponent=1.2), seed=0)
        assert skewed.degrees().std() > flat.degrees().std()

    def test_invalid_homophily_rejected(self):
        with pytest.raises(DatasetError):
            small_config(homophily=1.5)

    def test_invalid_label_noise_rejected(self):
        with pytest.raises(DatasetError):
            small_config(label_noise=1.0)

    def test_empty_class_rejected(self):
        with pytest.raises(DatasetError):
            SbmConfig(class_sizes=np.array([5, 0]), feature_dim=4, avg_degree=2.0)

    def test_smoothing_pulls_neighbors_together(self):
        graph = generate_sbm_graph(small_config(feature_noise=2.0), seed=0)
        smoothed = smooth_features(graph.adjacency, graph.features, rounds=3)
        adj = graph.adjacency.tocoo()
        raw_gap = np.linalg.norm(
            graph.features[adj.row] - graph.features[adj.col], axis=1).mean()
        new_gap = np.linalg.norm(
            smoothed[adj.row] - smoothed[adj.col], axis=1).mean()
        assert new_gap < raw_gap

    def test_smoothing_validates_arguments(self):
        graph = generate_sbm_graph(small_config(), seed=0)
        with pytest.raises(DatasetError):
            smooth_features(graph.adjacency, graph.features, rounds=-1)
        with pytest.raises(DatasetError):
            smooth_features(graph.adjacency, graph.features, alpha=2.0)


class TestRegistry:
    def test_names_include_paper_analogues(self):
        names = dataset_names()
        for expected in ("pubmed-sim", "flickr-sim", "reddit-sim", "tiny-sim"):
            assert expected in names

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("cora")

    def test_spec_scaling(self):
        spec = DATASET_SPECS["tiny-sim"].scaled(2.0)
        assert spec.num_nodes == 600

    def test_spec_scaling_invalid(self):
        with pytest.raises(DatasetError):
            DATASET_SPECS["tiny-sim"].scaled(0.0)

    def test_scale_parameter_changes_size(self):
        small = load_dataset("tiny-sim", seed=0, scale=0.5)
        full = load_dataset("tiny-sim", seed=0)
        assert small.full.num_nodes < full.full.num_nodes


class TestInductiveSplit:
    def test_partitions_are_disjoint(self, tiny_split):
        combined = np.concatenate([tiny_split.train_idx, tiny_split.val_idx,
                                   tiny_split.test_idx])
        assert np.unique(combined).size == combined.size

    def test_original_graph_only_train_nodes(self, tiny_split):
        assert tiny_split.original.num_nodes == tiny_split.train_idx.size

    def test_labeled_subset_of_train(self, tiny_split):
        assert np.isin(tiny_split.labeled_idx, tiny_split.train_idx).all()

    def test_labeled_positions_consistent(self, tiny_split):
        rows = tiny_split.labeled_in_original
        original = tiny_split.original
        recovered = tiny_split.full.labels[tiny_split.labeled_idx]
        assert np.array_equal(original.labels[rows], recovered)

    def test_all_classes_labeled(self, tiny_split):
        covered = np.unique(tiny_split.full.labels[tiny_split.labeled_idx])
        assert covered.size == tiny_split.num_classes

    def test_incremental_batch_shapes(self, tiny_split):
        batch = tiny_split.incremental_batch("test")
        n = tiny_split.test_idx.size
        assert batch.features.shape == (n, tiny_split.original.feature_dim)
        assert batch.incremental.shape == (n, tiny_split.original.num_nodes)
        assert batch.intra.shape == (n, n)
        assert batch.labels.shape == (n,)

    def test_incremental_edges_match_full_graph(self, tiny_split):
        batch = tiny_split.incremental_batch("val")
        full = tiny_split.full
        expected = full.adjacency[tiny_split.val_idx][:, tiny_split.train_idx]
        assert (batch.incremental != expected).nnz == 0

    def test_unknown_batch_rejected(self, tiny_split):
        with pytest.raises(DatasetError):
            tiny_split.incremental_batch("train")

    def test_batch_subset(self, tiny_split):
        batch = tiny_split.incremental_batch("test")
        sub = batch.subset(np.array([0, 2]))
        assert sub.num_nodes == 2
        assert np.allclose(sub.features, batch.features[[0, 2]])
        assert sub.intra.shape == (2, 2)

    def test_overlapping_split_rejected(self, tiny_split):
        from repro.graph.datasets import InductiveSplit
        with pytest.raises(DatasetError):
            InductiveSplit(tiny_split.full, np.array([0, 1]), np.array([1, 2]),
                           np.array([3]))

    def test_pubmed_sim_has_sparse_labels(self):
        split = load_dataset("pubmed-sim", seed=1)
        assert split.labeled_idx.size == 60
        assert split.train_idx.size > 1000

    def test_make_split_fraction_validation(self, tiny_split):
        rng = np.random.default_rng(0)
        with pytest.raises(DatasetError):
            make_split(tiny_split.full, 0.9, 0.2, 0.2, None, rng)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_split_deterministic_per_seed(seed):
    a = load_dataset("tiny-sim", seed=seed, scale=0.4)
    b = load_dataset("tiny-sim", seed=seed, scale=0.4)
    assert np.array_equal(a.train_idx, b.train_idx)
    assert np.array_equal(a.test_idx, b.test_idx)
