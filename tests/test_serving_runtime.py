"""ServingRuntime: micro-batching, queueing, accounting, parity."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ServingError
from repro.inference import InductiveServer
from repro.nn import make_model
from repro.registry import SCHEDULERS, make_scheduler
from repro.serving import (
    BoundedRequestQueue,
    ImmediateScheduler,
    MicroBatchScheduler,
    PreparedDeployment,
    QueueFullError,
    ServingRuntime,
    SizeCapScheduler,
    merge_requests,
    split_requests,
)


@pytest.fixture(scope="module")
def split():
    from repro.graph import load_dataset
    return load_dataset("tiny-sim", seed=7)


@pytest.fixture(scope="module")
def condensed(split):
    from repro.condense import MCondConfig, MCondReducer
    config = MCondConfig(outer_loops=1, match_steps=3, mapping_steps=5,
                        adjacency_pretrain_steps=30, seed=3)
    return MCondReducer(config).reduce(split, 9)


@pytest.fixture(scope="module")
def sgc(split):
    return make_model("sgc", split.original.feature_dim, split.num_classes,
                      seed=0)


def _runtime(sgc, split, condensed, deployment, **kwargs):
    base = split.original if deployment == "original" else None
    cond = condensed if deployment == "synthetic" else None
    prepared = PreparedDeployment(sgc, deployment, base, cond)
    return ServingRuntime(prepared, **kwargs)


# ----------------------------------------------------------------------
# Queue
# ----------------------------------------------------------------------
class TestBoundedQueue:
    def test_fifo(self):
        queue = BoundedRequestQueue(capacity=4)
        for item in ("a", "b", "c"):
            queue.put(item)
        assert [queue.get_nowait() for _ in range(3)] == ["a", "b", "c"]
        assert queue.get_nowait() is None

    def test_reject_policy(self):
        queue = BoundedRequestQueue(capacity=1, overflow="reject")
        queue.put("a")
        with pytest.raises(QueueFullError):
            queue.put("b")

    def test_drop_oldest_policy(self):
        queue = BoundedRequestQueue(capacity=2, overflow="drop_oldest")
        queue.put("a")
        queue.put("b")
        evicted = queue.put("c")
        assert evicted == "a"
        assert len(queue) == 2
        assert queue.get_nowait() == "b"

    def test_block_policy_times_out(self):
        queue = BoundedRequestQueue(capacity=1, overflow="block")
        queue.put("a")
        with pytest.raises(QueueFullError):
            queue.put("b", timeout=0.01)

    def test_close_stops_admission_but_drains(self):
        queue = BoundedRequestQueue(capacity=4)
        queue.put("a")
        queue.close()
        with pytest.raises(ServingError):
            queue.put("b")
        assert queue.get() == "a"
        assert queue.get(timeout=0.01) is None  # closed and empty

    def test_validation(self):
        with pytest.raises(ServingError):
            BoundedRequestQueue(capacity=0)
        with pytest.raises(ServingError):
            BoundedRequestQueue(overflow="explode")


class TestBoundedQueueConcurrency:
    """Overflow policies under many producer threads (the gateway shape)."""

    PRODUCERS = 8
    PER_PRODUCER = 25

    def _hammer(self, queue, produce):
        """Run ``produce(producer_id)`` on every producer thread at once."""
        import threading

        start = threading.Barrier(self.PRODUCERS)
        outcomes = [None] * self.PRODUCERS

        def worker(pid):
            start.wait()
            outcomes[pid] = produce(pid)

        threads = [threading.Thread(target=worker, args=(pid,))
                   for pid in range(self.PRODUCERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads)
        return outcomes

    def test_block_policy_loses_nothing_under_contention(self):
        queue = BoundedRequestQueue(capacity=4, overflow="block")
        consumed = []

        def produce(pid):
            for i in range(self.PER_PRODUCER):
                queue.put((pid, i), timeout=20.0)
            return self.PER_PRODUCER

        import threading

        def consume():
            while len(consumed) < self.PRODUCERS * self.PER_PRODUCER:
                item = queue.get(timeout=20.0)
                if item is None:
                    return
                consumed.append(item)

        consumer = threading.Thread(target=consume)
        consumer.start()
        self._hammer(queue, produce)
        consumer.join(timeout=30.0)
        assert not consumer.is_alive()
        # every (producer, seq) arrived exactly once, in per-producer order
        assert len(consumed) == self.PRODUCERS * self.PER_PRODUCER
        assert len(set(consumed)) == len(consumed)
        for pid in range(self.PRODUCERS):
            sequence = [i for p, i in consumed if p == pid]
            assert sequence == sorted(sequence)

    def test_reject_policy_never_exceeds_capacity(self):
        capacity = 4
        queue = BoundedRequestQueue(capacity=capacity, overflow="reject")

        def produce(pid):
            admitted = 0
            for i in range(self.PER_PRODUCER):
                try:
                    queue.put((pid, i))
                except QueueFullError:
                    continue
                admitted += 1
                assert len(queue) <= capacity
            return admitted

        admitted = sum(self._hammer(queue, produce))
        # accounting stays exact: everything admitted is still there
        assert admitted == len(queue) <= capacity
        drained = 0
        while queue.get_nowait() is not None:
            drained += 1
        assert drained == admitted

    def test_drop_oldest_policy_keeps_newest_under_contention(self):
        capacity = 4
        queue = BoundedRequestQueue(capacity=capacity, overflow="drop_oldest")

        def produce(pid):
            evicted = 0
            for i in range(self.PER_PRODUCER):
                evicted += queue.put((pid, i)) is not None
            return evicted

        evicted = sum(self._hammer(queue, produce))
        survivors = []
        while (item := queue.get_nowait()) is not None:
            survivors.append(item)
        # puts never block or fail; every item was either evicted or kept
        assert len(survivors) == capacity
        total = self.PRODUCERS * self.PER_PRODUCER
        assert evicted + len(survivors) == total
        # the queue kept late arrivals, not the opening burst
        assert all(i >= self.PER_PRODUCER - capacity
                   for _, i in survivors)


# ----------------------------------------------------------------------
# Schedulers
# ----------------------------------------------------------------------
class TestSchedulers:
    def test_registry_entries(self):
        for name in ("microbatch", "immediate", "sizecap"):
            assert name in SCHEDULERS

    def test_microbatch_limits(self):
        scheduler = make_scheduler("microbatch", max_batch_size=3,
                                   max_wait_ms=10.0)
        assert isinstance(scheduler, MicroBatchScheduler)
        assert not scheduler.full(2)
        assert scheduler.full(3)
        assert scheduler.deadline(100.0) == pytest.approx(100.010)

    def test_immediate_is_batch_of_one(self):
        scheduler = make_scheduler("immediate")
        assert isinstance(scheduler, ImmediateScheduler)
        assert scheduler.full(1)

    def test_sizecap_never_waits(self):
        scheduler = make_scheduler("sizecap", max_batch_size=5)
        assert isinstance(scheduler, SizeCapScheduler)
        assert scheduler.deadline(42.0) == pytest.approx(42.0)

    def test_validation(self):
        with pytest.raises(ServingError):
            MicroBatchScheduler(max_batch_size=0)
        with pytest.raises(ServingError):
            MicroBatchScheduler(max_wait_ms=-1.0)


# ----------------------------------------------------------------------
# Runtime parity: micro-batched streams == InductiveServer on the merge
# ----------------------------------------------------------------------
class TestRuntimeParity:
    @pytest.mark.parametrize("deployment", ("original", "synthetic"))
    @pytest.mark.parametrize("batch_mode", ("graph", "node"))
    def test_stream_matches_engine(self, sgc, split, condensed, deployment,
                                   batch_mode):
        runtime = _runtime(sgc, split, condensed, deployment,
                           scheduler="sizecap", batch_mode=batch_mode,
                           scheduler_options={"max_batch_size": 4})
        stream = split_requests(split.incremental_batch("test"), 8, 2)
        futures = [runtime.submit_batch(request) for request in stream]
        assert runtime.run_pending() == 8
        served = np.vstack([future.result() for future in futures])

        # the scheduler groups FIFO into fours; serving each merged group
        # through the naive engine must give bitwise-identical logits
        base = split.original if deployment == "original" else None
        cond = condensed if deployment == "synthetic" else None
        naive = InductiveServer(sgc, deployment, base, cond, use_cache=False)
        expected = []
        for start in range(0, 8, 4):
            merged = merge_requests(
                [runtime._build_request(r.features, r.incremental, r.intra)
                 for r in stream[start:start + 4]])
            logits, _, _ = naive.serve_batch(merged, batch_mode)
            expected.append(logits)
        assert np.array_equal(served, np.vstack(expected))

    def test_single_node_submit(self, sgc, split, condensed):
        runtime = _runtime(sgc, split, condensed, "original",
                           scheduler="immediate")
        batch = split.incremental_batch("test").subset(np.array([0]))
        future = runtime.submit(batch.features[0], batch.incremental)
        runtime.run_pending()
        logits = future.result()
        assert logits.shape == (1, split.num_classes)
        record = future.record
        assert record.batch_size == 1
        assert record.num_nodes == 1


# ----------------------------------------------------------------------
# Accounting, overflow, lifecycle
# ----------------------------------------------------------------------
class TestRuntimeBehaviour:
    def test_stats_accounting(self, sgc, split, condensed):
        runtime = _runtime(sgc, split, condensed, "original",
                           scheduler="sizecap",
                           scheduler_options={"max_batch_size": 3})
        stream = split_requests(split.incremental_batch("val"), 6, 1)
        for request in stream:
            runtime.submit_batch(request)
        runtime.run_pending()
        stats = runtime.stats()
        assert stats.requests == 6
        assert stats.nodes == 6
        assert stats.batches == 2
        assert stats.mean_batch_requests == pytest.approx(3.0)
        assert stats.latency_p50 <= stats.latency_p95 <= stats.latency_p99
        assert stats.queue_wait_mean >= 0.0
        assert stats.compute_mean > 0.0
        assert stats.throughput_rps > 0.0
        payload = stats.as_dict()
        assert payload["requests"] == 6
        assert payload["latency_p95_ms"] >= payload["latency_p50_ms"]

    def test_stats_before_any_request(self, sgc, split, condensed):
        # an idle runtime reports zeroes instead of crashing — and keeps
        # the rejection count visible when the queue sheds everything
        runtime = _runtime(sgc, split, condensed, "original",
                           queue_capacity=1, overflow="reject")
        stats = runtime.stats()
        assert stats.requests == 0
        assert stats.throughput_rps == 0.0
        runtime.submit_batch(split.incremental_batch("val").subset(
            np.array([0])))
        runtime.submit_batch(split.incremental_batch("val").subset(
            np.array([1])))  # rejected: capacity 1, nothing drained yet
        stats = runtime.stats()
        assert stats.requests == 0
        assert stats.rejected == 1

    def test_reject_overflow_fails_future(self, sgc, split, condensed):
        runtime = _runtime(sgc, split, condensed, "original",
                           queue_capacity=2, overflow="reject")
        stream = split_requests(split.incremental_batch("val"), 3, 1)
        futures = [runtime.submit_batch(request) for request in stream]
        assert futures[2].done()
        with pytest.raises(ServingError):
            futures[2].result()
        runtime.run_pending()
        assert futures[0].result().shape[0] == 1
        assert runtime.stats().rejected == 1

    def test_drop_oldest_evicts_first(self, sgc, split, condensed):
        runtime = _runtime(sgc, split, condensed, "original",
                           queue_capacity=2, overflow="drop_oldest")
        stream = split_requests(split.incremental_batch("val"), 3, 1)
        futures = [runtime.submit_batch(request) for request in stream]
        runtime.run_pending()
        with pytest.raises(ServingError):
            futures[0].result()
        assert futures[1].result() is not None
        assert futures[2].result() is not None

    def test_threaded_lifecycle(self, sgc, split, condensed):
        runtime = _runtime(sgc, split, condensed, "original",
                           scheduler="microbatch",
                           scheduler_options={"max_batch_size": 4,
                                              "max_wait_ms": 1.0})
        stream = split_requests(split.incremental_batch("test"), 10, 1)
        with runtime:
            futures = [runtime.submit_batch(request) for request in stream]
            results = [future.result(timeout=30.0) for future in futures]
        assert all(r.shape == (1, split.num_classes) for r in results)
        assert runtime.stats().requests == 10
        # after stop the queue refuses new work, and so does a restart —
        # a stopped runtime cannot be silently revived with a closed queue
        with pytest.raises(ServingError):
            runtime.submit_batch(stream[0])
        with pytest.raises(ServingError):
            runtime.start()

    def test_failed_batch_propagates_to_futures(self, sgc, split, condensed,
                                                monkeypatch):
        # A serve-time failure must surface through every co-batched
        # future and the `failed` counter — and must not kill the loop.
        runtime = _runtime(sgc, split, condensed, "original")
        good = split.incremental_batch("val").subset(np.array([0]))
        monkeypatch.setattr(
            runtime.prepared, "serve_batch",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")))
        future = runtime.submit_batch(good)
        runtime.run_pending()
        assert future.done()
        with pytest.raises(RuntimeError):
            future.result()
        assert runtime.stats().failed == 1
        # the loop survives: a well-formed request still serves
        monkeypatch.undo()
        ok = runtime.submit_batch(good)
        runtime.run_pending()
        assert ok.result().shape == (1, split.num_classes)

    def test_submit_validation(self, sgc, split, condensed):
        runtime = _runtime(sgc, split, condensed, "original")
        n = split.original.num_nodes
        with pytest.raises(ServingError):
            runtime.submit(np.zeros((0, split.original.feature_dim)),
                           sp.csr_matrix((0, n)))
        with pytest.raises(ServingError):
            # malformed feature dim is rejected at admission, before it
            # could poison a coalesced batch
            runtime.submit(np.zeros((1, split.original.feature_dim + 1)),
                           sp.csr_matrix((1, n)))
        with pytest.raises(ServingError):
            runtime.submit(np.zeros((1, split.original.feature_dim)),
                           sp.csr_matrix((1, n + 3)))
        with pytest.raises(ServingError):
            runtime.submit(np.zeros((2, split.original.feature_dim)),
                           sp.csr_matrix((2, n)),
                           intra=sp.csr_matrix((3, 3)))

    def test_precision_validation(self, sgc, split, condensed):
        with pytest.raises(ServingError):
            _runtime(sgc, split, condensed, "original", precision="loose")
        gcn = make_model("gcn", split.original.feature_dim,
                         split.num_classes, seed=0)
        prepared = PreparedDeployment(gcn, "original", split.original)
        with pytest.raises(ServingError):
            ServingRuntime(prepared, precision="frozen")

    def test_frozen_runtime_serves(self, sgc, split, condensed):
        runtime = _runtime(sgc, split, condensed, "synthetic",
                           scheduler="sizecap", precision="frozen",
                           batch_mode="node")
        stream = split_requests(split.incremental_batch("val"), 4, 1)
        futures = [runtime.submit_batch(request) for request in stream]
        runtime.run_pending()
        for future in futures:
            assert np.isfinite(future.result()).all()

    def test_warm_base_passthrough(self, sgc, split, condensed):
        runtime = _runtime(sgc, split, condensed, "original")
        warm = runtime.warm_base()
        assert warm.shape == (split.original.num_nodes, split.num_classes)

    def test_replay_returns_none_for_shed_requests(self, sgc, split,
                                                   condensed):
        # load shedding must not abort the replay harness: shed requests
        # come back as None, served ones keep their logits
        from repro.serving import replay
        runtime = _runtime(sgc, split, condensed, "original",
                           scheduler="sizecap", queue_capacity=2,
                           overflow="reject",
                           scheduler_options={"max_batch_size": 2})
        stream = split_requests(split.incremental_batch("val"), 5, 1)
        results = replay(runtime, stream, timeout=10.0)
        assert len(results) == 5
        served = [r for r in results if r is not None]
        shed = [r for r in results if r is None]
        assert served and shed
        assert runtime.stats().rejected == len(shed)

    def test_replay_exceeding_queue_capacity_without_thread(self, sgc, split,
                                                            condensed):
        # regression: with a 'block' queue smaller than the stream and no
        # consumer thread, replay used to deadlock in queue.put
        from repro.serving import replay
        runtime = _runtime(sgc, split, condensed, "original",
                           scheduler="sizecap", queue_capacity=3,
                           scheduler_options={"max_batch_size": 2})
        stream = split_requests(split.incremental_batch("val"), 8, 1)
        results = replay(runtime, stream, timeout=10.0)
        assert len(results) == 8
        assert runtime.stats().requests == 8


class TestMergeRequests:
    def test_block_structure(self, sgc, split, condensed):
        runtime = _runtime(sgc, split, condensed, "original")
        stream = split_requests(split.incremental_batch("test"), 2, 3)
        requests = [runtime._build_request(r.features, r.incremental, r.intra)
                    for r in stream]
        merged = merge_requests(requests)
        assert merged.num_nodes == 6
        assert merged.incremental.shape == (6, split.original.num_nodes)
        intra = merged.intra.toarray()
        # cross-request blocks must stay empty
        assert not intra[:3, 3:].any()
        assert not intra[3:, :3].any()
