"""Telemetry substrate: registry, exposition, tracing, timers."""

from __future__ import annotations

import json
import logging
import math
import threading

import numpy as np
import pytest

from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    GATEWAY_STAGES,
    MetricsRegistry,
    RUNTIME_STAGES,
    Stopwatch,
    TelemetryError,
    TraceContext,
    TraceLog,
    current_trace,
    format_seconds,
    histogram_quantile,
    new_trace_id,
    parse_exposition,
    record_stage,
    render_exposition,
    stage_span,
    use_trace,
)


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------
class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        requests = registry.counter("repro_t_requests_total", "requests",
                                    ("outcome",))
        requests.inc(outcome="served")
        requests.inc(2, outcome="served")
        requests.inc(outcome="shed")
        assert requests.value(outcome="served") == 3.0
        assert requests.value(outcome="shed") == 1.0
        assert requests.total() == 4.0

    def test_absent_child_reads_zero(self):
        registry = MetricsRegistry()
        requests = registry.counter("repro_t_requests_total", "requests",
                                    ("outcome",))
        assert requests.value(outcome="never") == 0.0

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        errors = registry.counter("repro_t_errors_total", "errors")
        with pytest.raises(TelemetryError, match="cannot decrease"):
            errors.inc(-1)

    def test_label_set_must_match_schema_exactly(self):
        registry = MetricsRegistry()
        requests = registry.counter("repro_t_requests_total", "requests",
                                    ("outcome",))
        with pytest.raises(TelemetryError, match="takes labels"):
            requests.inc()
        with pytest.raises(TelemetryError, match="takes labels"):
            requests.inc(outcome="ok", extra="nope")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError, match="invalid metric name"):
            registry.counter("0bad", "help")
        with pytest.raises(TelemetryError, match="invalid label name"):
            registry.counter("repro_t_total", "help", ("le",))


# ----------------------------------------------------------------------
# Gauges
# ----------------------------------------------------------------------
class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        depth = registry.gauge("repro_t_depth", "queue depth")
        depth.set(4)
        depth.inc()
        depth.dec(2)
        assert depth.value() == 3.0

    def test_callback_gauge_reads_live_value(self):
        state = {"depth": 7}
        registry = MetricsRegistry()
        depth = registry.gauge("repro_t_depth", "queue depth",
                               callback=lambda: state["depth"])
        assert depth.value() == 7.0
        state["depth"] = 2
        assert depth.value() == 2.0
        assert depth.samples() == [("repro_t_depth", {}, 2.0)]

    def test_callback_gauge_rejects_writes(self):
        registry = MetricsRegistry()
        depth = registry.gauge("repro_t_depth", "d", callback=lambda: 0)
        with pytest.raises(TelemetryError, match="callback-driven"):
            depth.set(1)
        with pytest.raises(TelemetryError, match="callback-driven"):
            depth.inc()

    def test_callback_gauge_rejects_labels(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError, match="cannot carry labels"):
            registry.gauge("repro_t_depth", "d", ("replica",),
                           callback=lambda: 0)


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------
class TestHistogram:
    def test_snapshot_is_cumulative(self):
        registry = MetricsRegistry()
        latency = registry.histogram("repro_t_seconds", "latency",
                                     buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            latency.observe(value)
        snapshot = latency.snapshot()
        assert snapshot["buckets"] == [(0.1, 1), (1.0, 3), (math.inf, 4)]
        assert snapshot["count"] == 4
        assert snapshot["sum"] == pytest.approx(6.05)

    def test_boundary_value_lands_in_its_le_bucket(self):
        registry = MetricsRegistry()
        latency = registry.histogram("repro_t_seconds", "latency",
                                     buckets=(0.1, 1.0))
        latency.observe(0.1)  # le="0.1" is an inclusive upper bound
        assert latency.snapshot()["buckets"][0] == (0.1, 1)

    def test_buckets_must_strictly_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError, match="strictly increasing"):
            registry.histogram("repro_t_seconds", "h", buckets=(1.0, 1.0))
        with pytest.raises(TelemetryError, match="strictly increasing"):
            registry.histogram("repro_t2_seconds", "h", buckets=(2.0, 1.0))

    def test_trailing_inf_bucket_is_implicit(self):
        registry = MetricsRegistry()
        latency = registry.histogram("repro_t_seconds", "latency",
                                     buckets=(0.5, math.inf))
        assert latency.buckets == (0.5,)

    def test_empty_child_snapshot(self):
        registry = MetricsRegistry()
        latency = registry.histogram("repro_t_seconds", "latency",
                                     buckets=(0.5,))
        snapshot = latency.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["buckets"] == [(0.5, 0), (math.inf, 0)]


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_t_total", "t", ("outcome",))
        second = registry.counter("repro_t_total", "other help",
                                  ("outcome",))
        assert first is second

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total", "t")
        with pytest.raises(TelemetryError, match="already registered as"):
            registry.gauge("repro_t_total", "t")

    def test_label_schema_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total", "t", ("outcome",))
        with pytest.raises(TelemetryError, match="already registered with"):
            registry.counter("repro_t_total", "t", ("mode",))

    def test_clear_histograms_keeps_counters(self):
        registry = MetricsRegistry()
        served = registry.counter("repro_t_total", "t")
        latency = registry.histogram("repro_t_seconds", "l", buckets=(1.0,))
        served.inc()
        latency.observe(0.5)
        registry.clear_histograms()
        assert served.value() == 1.0
        assert latency.snapshot()["count"] == 0

    def test_collect_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total", "t", ("outcome",)).inc(
            outcome="served")
        snapshot = json.loads(json.dumps(registry.collect()))
        samples = snapshot["repro_t_total"]["samples"]
        assert samples == [{"name": "repro_t_total",
                            "labels": {"outcome": "served"}, "value": 1.0}]


# ----------------------------------------------------------------------
# Exposition: render, merge, parse
# ----------------------------------------------------------------------
class TestExposition:
    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_requests_total", "requests",
                         ("outcome",)).inc(3, outcome="served")
        registry.gauge("repro_t_inflight", "inflight").set(2)
        registry.histogram("repro_t_seconds", "latency",
                           buckets=(0.1,)).observe(0.05)
        page = registry.render()
        assert "# HELP repro_t_requests_total requests" in page
        assert "# TYPE repro_t_seconds histogram" in page
        samples = parse_exposition(page)
        assert samples["repro_t_requests_total"] == [
            ({"outcome": "served"}, 3.0)]
        assert samples["repro_t_inflight"] == [({}, 2.0)]
        assert ({"le": "+Inf"}, 1.0) in samples["repro_t_seconds_bucket"]
        assert samples["repro_t_seconds_count"] == [({}, 1.0)]

    def test_merge_shares_same_name_families(self):
        gateway, fleet = MetricsRegistry(), MetricsRegistry()
        for registry, component in ((gateway, "gateway"), (fleet, "fleet")):
            registry.histogram("repro_stage_latency_seconds", "stages",
                               ("component", "stage"),
                               buckets=(1.0,)).observe(
                0.5, component=component, stage="serve")
        page = render_exposition(gateway, fleet)
        assert page.count("# TYPE repro_stage_latency_seconds") == 1
        counts = parse_exposition(page)["repro_stage_latency_seconds_count"]
        assert ({"component": "gateway", "stage": "serve"}, 1.0) in counts
        assert ({"component": "fleet", "stage": "serve"}, 1.0) in counts

    def test_merge_rejects_conflicting_schemas(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("repro_t_total", "t", ("outcome",))
        second.gauge("repro_t_total", "t")
        with pytest.raises(TelemetryError, match="conflicting schemas"):
            render_exposition(first, second)

    def test_merge_rejects_duplicate_label_sets(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        for registry in (first, second):
            registry.counter("repro_t_total", "t", ("outcome",)).inc(
                outcome="served")
        with pytest.raises(TelemetryError, match="duplicate sample"):
            render_exposition(first, second)

    def test_label_value_escaping_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total", "t", ("mode",)).inc(
            mode='we"ird\\mo\nde')
        samples = parse_exposition(registry.render())
        assert samples["repro_t_total"] == [({"mode": 'we"ird\\mo\nde'}, 1.0)]

    def test_malformed_lines_rejected(self):
        with pytest.raises(TelemetryError, match="malformed"):
            parse_exposition("this is not exposition\n")
        with pytest.raises(TelemetryError, match="malformed"):
            parse_exposition("repro_t_total not-a-number\n")


class TestHistogramQuantile:
    def test_empty_histogram_returns_none(self):
        assert histogram_quantile([], 0.5) is None
        assert histogram_quantile([(1.0, 0), (math.inf, 0)], 0.5) is None

    def test_interpolates_inside_winning_bucket(self):
        buckets = [(1.0, 10), (2.0, 20), (math.inf, 20)]
        assert histogram_quantile(buckets, 0.5) == pytest.approx(1.0)
        assert histogram_quantile(buckets, 0.75) == pytest.approx(1.5)

    def test_tail_quantile_capped_at_highest_finite_bound(self):
        buckets = [(1.0, 1), (math.inf, 10)]
        assert histogram_quantile(buckets, 0.99) == pytest.approx(1.0)

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(TelemetryError, match="quantile"):
            histogram_quantile([(1.0, 1)], 1.5)


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_canonical_stage_names(self):
        assert GATEWAY_STAGES == ("admission", "dispatch", "serve",
                                  "collect", "reply")
        assert RUNTIME_STAGES == ("queue_wait", "assembly", "serve")

    def test_trace_ids_are_unique_hex(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 for i in ids)

    def test_same_name_spans_sum(self):
        trace = TraceContext("t" * 16)
        trace.add_stage("serve", 0.1)
        trace.add_stage("serve", 0.2)
        assert trace.stages()["serve"] == pytest.approx(0.3)

    def test_finish_is_idempotent(self):
        trace = TraceContext()
        first = trace.finish()
        assert trace.finish() == first
        assert trace.total_seconds == first

    def test_as_dict_carries_labels_and_ms(self):
        trace = TraceContext("a" * 16, labels={"mode": "node"})
        trace.add_stage("serve", 0.25)
        trace.finish()
        payload = trace.as_dict()
        assert payload["trace_id"] == "a" * 16
        assert payload["mode"] == "node"
        assert payload["stages_ms"]["serve"] == pytest.approx(250.0)


class TestContextVarPlumbing:
    def test_use_trace_installs_and_restores(self):
        trace = TraceContext()
        assert current_trace() is None
        with use_trace(trace):
            assert current_trace() is trace
        assert current_trace() is None

    def test_record_stage_without_trace_is_noop(self):
        record_stage("serve", 1.0)  # must not raise

    def test_stage_span_nests_dotted_names(self):
        trace = TraceContext()
        with use_trace(trace):
            with stage_span("serve"):
                with stage_span("operator"):
                    pass
                with stage_span("forward"):
                    pass
        names = [span.stage for span in trace.spans]
        assert names == ["serve.operator", "serve.forward", "serve"]

    def test_stage_span_feeds_histogram_without_trace(self):
        registry = MetricsRegistry()
        latency = registry.histogram("repro_stage_latency_seconds", "stages",
                                     ("component", "stage"), buckets=(10.0,))
        with stage_span("serve", latency, component="test", stage="serve"):
            pass
        assert latency.snapshot(component="test", stage="serve")["count"] == 1


class TestTraceLog:
    def _trace(self, seconds: float) -> TraceContext:
        trace = TraceContext()
        trace.add_stage("serve", seconds)
        trace._total = seconds  # pin the total for deterministic ordering
        return trace

    def test_ring_is_bounded(self):
        ring = TraceLog(capacity=4)
        traces = [self._trace(i / 10) for i in range(6)]
        for trace in traces:
            ring.observe(trace)
        assert len(ring) == 4
        assert traces[0] not in ring.slowest(10)

    def test_slowest_sorts_worst_first(self):
        ring = TraceLog(capacity=8)
        for seconds in (0.2, 0.5, 0.1):
            ring.observe(self._trace(seconds))
        totals = [trace.total_seconds for trace in ring.slowest(2)]
        assert totals == [0.5, 0.2]

    def test_slow_threshold_emits_structured_warning(self, caplog):
        ring = TraceLog(capacity=4, slow_ms=100.0)
        with caplog.at_level(logging.WARNING, logger="repro.telemetry"):
            ring.observe(self._trace(0.001))
            ring.observe(self._trace(0.5))
        assert len(caplog.records) == 1
        payload = json.loads(caplog.records[0].getMessage()
                             .removeprefix("slow request "))
        assert payload["stages_ms"]["serve"] == pytest.approx(500.0)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceLog(capacity=0)
        with pytest.raises(ValueError, match="slow_ms"):
            TraceLog(slow_ms=0.0)

    def test_clear_empties_ring(self):
        ring = TraceLog(capacity=4)
        ring.observe(self._trace(0.1))
        ring.clear()
        assert len(ring) == 0
        assert ring.slowest(5) == []


# ----------------------------------------------------------------------
# Timers + back-compat alias
# ----------------------------------------------------------------------
class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as watch:
            pass
        assert watch.elapsed >= 0.0

    def test_reports_into_current_trace_and_histogram(self):
        registry = MetricsRegistry()
        latency = registry.histogram("repro_t_seconds", "l", buckets=(10.0,))
        trace = TraceContext()
        with use_trace(trace):
            with Stopwatch(stage="assembly", histogram=latency):
                pass
        assert "assembly" in trace.stages()
        assert latency.snapshot()["count"] == 1

    def test_utils_alias_is_the_same_object(self):
        from repro.utils import timers as legacy

        assert legacy.Stopwatch is Stopwatch
        assert legacy.format_seconds is format_seconds

    def test_format_seconds_branches(self):
        assert format_seconds(5e-4) == "500us"
        assert format_seconds(0.0123) == "12.3ms"
        assert format_seconds(1.5) == "1.5s"
        assert format_seconds(125.0) == "2m05.0s"
        with pytest.raises(ValueError):
            format_seconds(-1.0)


# ----------------------------------------------------------------------
# Thread safety
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        served = registry.counter("repro_t_total", "t", ("outcome",))
        latency = registry.histogram("repro_t_seconds", "l", buckets=(1.0,))

        def worker():
            for _ in range(500):
                served.inc(outcome="served")
                latency.observe(0.5)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert served.value(outcome="served") == 2000.0
        assert latency.snapshot()["count"] == 2000

    def test_render_during_concurrent_observe(self):
        registry = MetricsRegistry()
        latency = registry.histogram("repro_t_seconds", "l", buckets=(1.0,))
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                latency.observe(0.5)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(50):
                parse_exposition(registry.render())
        finally:
            stop.set()
            thread.join()
        buckets = np.array(
            [v for _, v in latency.snapshot()["buckets"]])
        assert (np.diff(buckets) >= 0).all()

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            set(DEFAULT_LATENCY_BUCKETS))
