"""Network gateway: wire protocol, admission control, autoscaling."""

from __future__ import annotations

import io
import json
import http.client
import socket
import struct

import numpy as np
import pytest
import scipy.sparse as sp

from repro import api
from repro.cli import main
from repro.errors import RegistryError, ServingError
from repro.graph.datasets import IncrementalBatch
from repro.registry import (SCALE_POLICIES, SHED_POLICIES, make_scale_policy,
                            make_shed_policy)
from repro.serving import ServingFleet, split_requests
from repro.serving.gateway import (
    AdmitAllShed,
    PinnedScale,
    QueueDepthScale,
    ServingGateway,
    WatermarkShed,
)
from repro.serving import protocol
from repro.serving.gateway_bench import (
    check_gateway_benchmark_schema,
    gate_gateway_benchmark,
)
from repro.serving.protocol import (
    GatewayClient,
    ProtocolError,
    decode_prefix,
    decode_reply,
    decode_serve_request,
    encode_frame,
    encode_reply,
    encode_serve_request,
    read_frame_from,
)
from repro.utils.reports import write_benchmark_json


# ----------------------------------------------------------------------
# Shared artifacts (module-cached: deploys and process spawns are slow)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def gw_bundle():
    return api.deploy("tiny-sim", "mcond", 9, profile="quick",
                      deployment="synthetic")


@pytest.fixture(scope="module")
def gw_artifact(gw_bundle, tmp_path_factory):
    root = tmp_path_factory.mktemp("gateway-artifacts")
    return gw_bundle.save(root / "synthetic.npz", layout="mmap")


@pytest.fixture(scope="module")
def gw_requests(gw_bundle):
    return split_requests(api.evaluation_batch(gw_bundle), 12, 2)


@pytest.fixture(scope="module")
def gateway(gw_artifact):
    """One long-lived 1-replica gateway for the read-mostly tests."""
    fleet = ServingFleet(gw_artifact, 1, router="round-robin",
                        batch_mode="node")
    gw = ServingGateway(fleet, max_inflight=64, owns_fleet=True)
    gw.start()
    yield gw
    gw.close()


def _toy_batch(n: int = 3, d: int = 4, total: int = 10,
               with_intra: bool = True) -> IncrementalBatch:
    rng = np.random.default_rng(5)
    features = rng.standard_normal((n, d))
    incremental = sp.random(n, total, density=0.4, random_state=3,
                            format="csr", dtype=np.float64)
    intra = None
    if with_intra:
        intra = sp.random(n, n, density=0.5, random_state=4, format="csr",
                          dtype=np.float64)
    return IncrementalBatch(features=features, incremental=incremental,
                            intra=intra,
                            labels=np.full(n, -1, dtype=np.int64))


def _round_trip(batch, **kwargs):
    frame = encode_serve_request(7, batch, **kwargs)
    header, payload = read_frame_from(io.BytesIO(frame).read)
    return decode_serve_request(header, payload)


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    @pytest.mark.parametrize("encoding", ["json", "binary"])
    def test_serve_round_trip_is_bitwise(self, encoding):
        batch = _toy_batch()
        request = _round_trip(batch, mode="graph", frozen=True, key="k1",
                              encoding=encoding)
        assert request.request_id == 7
        assert request.mode == "graph"
        assert request.frozen is True
        assert request.key == "k1"
        assert request.encoding == encoding
        assert np.array_equal(request.batch.features, batch.features)
        assert np.array_equal(request.batch.incremental.toarray(),
                              batch.incremental.toarray())
        assert np.array_equal(request.batch.intra.toarray(),
                              batch.intra.toarray())
        assert (request.batch.labels == -1).all()

    def test_float32_payload_widens_exactly(self):
        batch = _toy_batch()
        narrowed = IncrementalBatch(
            features=batch.features.astype(np.float32),
            incremental=batch.incremental.astype(np.float32),
            intra=batch.intra, labels=batch.labels)
        request = _round_trip(narrowed, encoding="binary", dtype="float32")
        assert request.batch.features.dtype == np.float64
        assert np.array_equal(request.batch.features,
                              narrowed.features.astype(np.float64))

    def test_missing_intra_defaults_to_empty(self):
        request = _round_trip(_toy_batch(with_intra=False))
        assert request.batch.intra.shape == (3, 3)
        assert request.batch.intra.nnz == 0
        assert request.mode is None and request.frozen is False

    def test_reply_round_trip(self):
        logits = np.random.default_rng(0).standard_normal((3, 5))
        frame = encode_reply(11, "ok", logits=logits, replica_id=2,
                             attempts=1, compute_ms=0.5, encoding="binary")
        reply = decode_reply(*read_frame_from(io.BytesIO(frame).read))
        assert reply.ok and reply.request_id == 11
        assert np.array_equal(reply.logits, logits)
        assert reply.replica_id == 2 and reply.attempts == 1

    def test_shed_reply_carries_hint(self):
        frame = encode_reply(3, "shed", error="full", retry_after_ms=25.0)
        reply = decode_reply(*read_frame_from(io.BytesIO(frame).read))
        assert not reply.ok
        assert reply.status == "shed" and reply.retry_after_ms == 25.0

    def test_bad_magic_rejected(self):
        prefix = struct.pack("!4sBII", b"XXXX", 1, 2, 0)
        with pytest.raises(ProtocolError, match="magic"):
            decode_prefix(prefix)

    def test_bad_version_rejected(self):
        prefix = struct.pack("!4sBII", protocol.MAGIC, 99, 2, 0)
        with pytest.raises(ProtocolError, match="version"):
            decode_prefix(prefix)

    def test_oversized_frame_rejected(self):
        prefix = struct.pack("!4sBII", protocol.MAGIC, 1,
                             protocol.MAX_HEADER_BYTES + 1, 0)
        with pytest.raises(ProtocolError, match="too large"):
            decode_prefix(prefix)

    def test_truncated_prefix_rejected(self):
        with pytest.raises(ProtocolError, match="truncated"):
            decode_prefix(b"RP")

    def test_header_must_be_json_object(self):
        with pytest.raises(ProtocolError, match="JSON"):
            read_frame_from(io.BytesIO(
                struct.pack("!4sBII", protocol.MAGIC, 1, 4, 0) + b"nope").read)
        frame = protocol._PREFIX.pack(protocol.MAGIC, 1, 2, 0) + b"[]"
        with pytest.raises(ProtocolError, match="object"):
            read_frame_from(io.BytesIO(frame).read)

    def test_payload_descriptor_bounds_checked(self):
        header = {"op": "serve", "id": 1, "encoding": "binary",
                  "features": {"dtype": "float64", "shape": [2, 2],
                               "offset": 0, "nbytes": 4096},
                  "incremental": [[0.0]]}
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_serve_request(header, b"\x00" * 8)

    def test_shape_and_row_mismatches_rejected(self):
        batch = _toy_batch()
        frame = encode_serve_request(1, batch)
        header, payload = read_frame_from(io.BytesIO(frame).read)
        bad = dict(header)
        bad["features"] = [[1.0, 2.0]]  # 1 row vs 3 incremental rows
        with pytest.raises(ProtocolError, match="rows"):
            decode_serve_request(bad, payload)
        bad = dict(header)
        bad["mode"] = "turbo"
        with pytest.raises(ProtocolError, match="mode"):
            decode_serve_request(bad, payload)
        bad = dict(header)
        bad["id"] = "one"
        with pytest.raises(ProtocolError, match="id"):
            decode_serve_request(bad, payload)
        bad = dict(header)
        del bad["features"]
        with pytest.raises(ProtocolError, match="features"):
            decode_serve_request(bad, payload)

    def test_intra_must_be_square(self):
        batch = _toy_batch()
        frame = encode_serve_request(1, batch)
        header, payload = read_frame_from(io.BytesIO(frame).read)
        header = dict(header)
        header["intra"] = [[1.0, 0.0]]
        with pytest.raises(ProtocolError, match="intra"):
            decode_serve_request(header, payload)

    def test_encoding_and_dtype_validated(self):
        with pytest.raises(ServingError, match="encoding"):
            encode_serve_request(1, _toy_batch(), encoding="pickle")
        with pytest.raises(ServingError, match="dtype"):
            encode_serve_request(1, _toy_batch(), dtype="float16")
        with pytest.raises(ServingError, match="encoding"):
            GatewayClient("127.0.0.1", 1, encoding="pickle")

    def test_reply_without_status_rejected(self):
        with pytest.raises(ProtocolError, match="status"):
            decode_reply({"op": "reply", "id": 1}, b"")


# ----------------------------------------------------------------------
# Shed policies
# ----------------------------------------------------------------------
class TestShedPolicies:
    def test_admit_all_never_sheds(self):
        policy = AdmitAllShed()
        assert policy.admit(queue_depth=10 ** 6, capacity=1) is None

    def test_watermark_hysteresis(self):
        policy = WatermarkShed(high=0.75, low=0.5, retry_after_ms=50.0)
        assert policy.admit(queue_depth=74, capacity=100) is None
        assert policy.admit(queue_depth=75, capacity=100) is not None
        # still shedding inside the band (depth fell, but not to low)
        assert policy.admit(queue_depth=60, capacity=100) is not None
        # recovered at the low watermark
        assert policy.admit(queue_depth=50, capacity=100) is None
        assert policy.admit(queue_depth=60, capacity=100) is None

    def test_watermark_hint_grows_with_overload(self):
        policy = WatermarkShed(high=0.5, low=0.25, retry_after_ms=10.0)
        light = policy.admit(queue_depth=50, capacity=100)
        heavy = policy.admit(queue_depth=100, capacity=100)
        assert light is not None and heavy is not None
        assert heavy > light

    def test_watermark_validation(self):
        with pytest.raises(ServingError):
            WatermarkShed(high=1.5)
        with pytest.raises(ServingError):
            WatermarkShed(high=0.5, low=0.8)
        with pytest.raises(ServingError):
            WatermarkShed(retry_after_ms=0)

    def test_registry_builds_policies(self):
        assert {"admit-all", "watermark"} <= set(SHED_POLICIES.keys())
        policy = make_shed_policy("watermark", high=0.9, low=0.1)
        assert isinstance(policy, WatermarkShed) and policy.high == 0.9
        assert isinstance(make_shed_policy("admit-all"), AdmitAllShed)
        with pytest.raises(RegistryError):
            make_shed_policy("coin-flip")


# ----------------------------------------------------------------------
# Scale policies
# ----------------------------------------------------------------------
class TestScalePolicies:
    def test_pinned_holds_size(self):
        assert PinnedScale().target(replicas=3, queue_depth=100,
                                    p95_ms=None) == 3
        assert PinnedScale(replicas=2).target(replicas=5, queue_depth=0,
                                              p95_ms=None) == 2
        with pytest.raises(ServingError):
            PinnedScale(replicas=0)

    def test_queue_depth_steps_one_at_a_time(self):
        policy = QueueDepthScale(min_replicas=1, max_replicas=4,
                                 up_backlog=4.0, down_backlog=1.0)
        # massive backlog still grows by exactly one replica
        assert policy.target(replicas=1, queue_depth=1000, p95_ms=None) == 2
        assert policy.target(replicas=2, queue_depth=8, p95_ms=None) == 3
        # in the dead band the size holds
        assert policy.target(replicas=2, queue_depth=4, p95_ms=None) == 2
        # idle shrinks by one, never below min
        assert policy.target(replicas=2, queue_depth=0, p95_ms=None) == 1
        assert policy.target(replicas=1, queue_depth=0, p95_ms=None) == 1
        # saturated stays at max
        assert policy.target(replicas=4, queue_depth=1000, p95_ms=None) == 4

    def test_queue_depth_p95_trip_wire(self):
        policy = QueueDepthScale(max_replicas=4, up_backlog=100.0,
                                 p95_up_ms=10.0)
        assert policy.target(replicas=2, queue_depth=3, p95_ms=25.0) == 3
        assert policy.target(replicas=2, queue_depth=3, p95_ms=None) == 2

    def test_queue_depth_validation(self):
        with pytest.raises(ServingError):
            QueueDepthScale(min_replicas=0)
        with pytest.raises(ServingError):
            QueueDepthScale(min_replicas=3, max_replicas=2)
        with pytest.raises(ServingError):
            QueueDepthScale(up_backlog=1.0, down_backlog=2.0)

    def test_registry_builds_policies(self):
        assert {"pinned", "queue-depth"} <= set(SCALE_POLICIES.keys())
        policy = make_scale_policy("queue-depth", min_replicas=2,
                                   max_replicas=6)
        assert isinstance(policy, QueueDepthScale)
        assert (policy.min_replicas, policy.max_replicas) == (2, 6)
        assert isinstance(make_scale_policy("pinned"), PinnedScale)


# ----------------------------------------------------------------------
# Fleet elasticity (scale_to / reset_latencies / queue_depth)
# ----------------------------------------------------------------------
class TestFleetElasticity:
    def test_scale_up_and_down_loses_nothing(self, gw_artifact, gw_requests):
        with ServingFleet(gw_artifact, 1, router="round-robin",
                          batch_mode="node") as fleet:
            futures = [fleet.submit_batch(r) for r in gw_requests]
            assert fleet.scale_to(2) == 2
            assert fleet.num_replicas == 2
            futures += [fleet.submit_batch(r) for r in gw_requests]
            assert fleet.scale_to(1) == 1
            results = [f.result(timeout=120.0) for f in futures]
            assert all(r is not None for r in results)
            assert fleet.num_replicas == 1
            assert fleet.queue_depth() == 0
            with pytest.raises(ServingError):
                fleet.scale_to(0)

    def test_reset_latencies_keeps_request_counters(self, gw_artifact,
                                                    gw_requests):
        with ServingFleet(gw_artifact, 1, router="round-robin",
                          batch_mode="node") as fleet:
            for request in gw_requests[:4]:
                fleet.submit_batch(request).result(timeout=120.0)
            stats = fleet.stats()
            assert stats["completed"] == 4
            assert stats["latency_p50_ms"] is not None
            fleet.reset_latencies()
            stats = fleet.stats()
            # percentiles reset, the accounting the gates audit survives
            assert stats["latency_p50_ms"] is None
            assert stats["completed"] == 4
            assert sum(r["served"] for r in stats["per_replica"].values()) == 4
            fleet.reset_latencies(counters=True)
            stats = fleet.stats()
            assert stats["completed"] == 0
            assert all(r["served"] == 0
                       for r in stats["per_replica"].values())


# ----------------------------------------------------------------------
# Gateway serving
# ----------------------------------------------------------------------
class TestGatewayServing:
    def test_socket_matches_direct_fleet_bitwise(self, gateway, gw_requests):
        """Acceptance: gateway replies == direct submit, per path."""
        fleet = gateway.fleet
        for encoding in ("json", "binary"):
            with GatewayClient(*gateway.address, encoding=encoding) as client:
                for mode in ("graph", "node"):
                    for request in gw_requests[:3]:
                        direct = fleet.submit_batch(
                            request, mode=mode).result(timeout=120.0)
                        reply = client.serve_batch(request, mode=mode)
                        assert reply.ok, reply.error
                        assert reply.logits.dtype == np.float64
                        assert np.array_equal(direct, reply.logits)

    def test_frozen_path_parity(self, gateway, gw_requests):
        fleet = gateway.fleet
        direct = fleet.submit_batch(gw_requests[0],
                                    frozen=True).result(timeout=120.0)
        with GatewayClient(*gateway.address, encoding="binary") as client:
            reply = client.serve_batch(gw_requests[0], frozen=True)
        assert reply.ok, reply.error
        assert np.array_equal(direct, reply.logits)

    def test_pipelined_replies_come_back_by_id(self, gateway, gw_requests):
        with GatewayClient(*gateway.address, encoding="binary") as client:
            ids = [client.submit(r) for r in gw_requests[:6]]
            replies = client.drain(len(ids))
        assert sorted(replies) == sorted(ids)
        assert all(reply.ok for reply in replies.values())

    def test_serve_convenience_wrapper(self, gateway, gw_requests):
        batch = gw_requests[0]
        with GatewayClient(*gateway.address) as client:
            reply = client.serve(batch.features, batch.incremental,
                                 batch.intra)
        assert reply.ok
        assert reply.logits.shape[0] == batch.features.shape[0]

    def test_ping_and_stats_ops(self, gateway):
        with GatewayClient(*gateway.address) as client:
            assert client.ping().status == "pong"
            stats = client.stats()
        assert stats["port"] == gateway.port
        assert stats["served"] <= stats["offered"]
        assert stats["shed_policy"] == "admit-all"
        assert stats["fleet"]["replicas"] == 1

    def test_unknown_op_gets_error_reply(self, gateway):
        with GatewayClient(*gateway.address) as client:
            client._sock.sendall(encode_frame({"op": "bogus", "id": 41}))
            reply = client._read_reply()
        assert reply.status == "error" and reply.request_id == 41
        assert "bogus" in reply.error

    def test_malformed_serve_keeps_connection_alive(self, gateway):
        with GatewayClient(*gateway.address) as client:
            client._sock.sendall(encode_frame({"op": "serve", "id": 9}))
            reply = client._read_reply()
            assert reply.status == "error" and reply.request_id == 9
            assert "features" in reply.error
            # the error was per-request, not per-connection
            assert client.ping().status == "pong"

    def test_http_probes(self, gateway):
        for path, expect in (("/healthz", 200), ("/stats", 200),
                             ("/nope", 404)):
            conn = http.client.HTTPConnection(*gateway.address, timeout=10)
            try:
                conn.request("GET", path)
                response = conn.getresponse()
                body = json.loads(response.read())
            finally:
                conn.close()
            assert response.status == expect
            if path == "/healthz":
                assert body == {"status": "ok", "replicas": 1}
            elif path == "/stats":
                assert body["offered"] >= body["served"]

    def test_start_twice_raises(self, gateway):
        with pytest.raises(ServingError, match="already started"):
            gateway.start()

    def test_reply_carries_trace_breakdown(self, gateway, gw_requests):
        with GatewayClient(*gateway.address, encoding="binary") as client:
            reply = client.serve_batch(gw_requests[0])
        assert reply.ok
        assert isinstance(reply.trace_id, str) and len(reply.trace_id) == 16
        # the reply span is timed after encoding, so the wire breakdown
        # carries every stage known before it
        assert {"admission", "dispatch", "serve",
                "collect"} <= set(reply.stages)
        assert all(ms >= 0.0 for ms in reply.stages.values())

    def test_slowest_trace_covers_all_gateway_stages(self, gateway,
                                                     gw_requests):
        """Acceptance: a slow request shows up with all five spans."""
        with GatewayClient(*gateway.address, encoding="binary") as client:
            for request in gw_requests[:3]:
                assert client.serve_batch(request).ok
        slowest = gateway.slowest(1)
        assert slowest, "served traffic must retain traces"
        stages = set(slowest[0].stages())
        assert {"admission", "dispatch", "serve", "collect",
                "reply"} <= stages
        assert {"serve.operator", "serve.forward"} <= stages

    def test_metrics_page_covers_every_layer(self, gateway, gw_requests):
        """Acceptance: GET /metrics is valid exposition, all core series."""
        from repro.telemetry import parse_exposition

        with GatewayClient(*gateway.address, encoding="binary") as client:
            for request in gw_requests[:2]:
                assert client.serve_batch(request).ok
        conn = http.client.HTTPConnection(*gateway.address, timeout=10)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            body = response.read().decode("utf-8")
        finally:
            conn.close()
        assert response.status == 200
        assert response.getheader("Content-Type").startswith(
            "text/plain; version=0.0.4")
        samples = parse_exposition(body)  # raises on malformed lines
        outcomes = {labels["outcome"]: value for labels, value
                    in samples["repro_gateway_requests_total"]}
        assert outcomes["offered"] >= outcomes["served"] >= 2.0
        fleet_outcomes = {labels["outcome"]: value for labels, value
                          in samples["repro_fleet_requests_total"]}
        assert fleet_outcomes["completed"] >= 2.0
        assert samples["repro_fleet_replica_served_total"]
        for gauge in ("repro_gateway_inflight", "repro_gateway_max_inflight",
                      "repro_gateway_draining", "repro_fleet_queue_depth",
                      "repro_fleet_replicas"):
            assert gauge in samples, f"missing gauge {gauge}"
        stage_counts = {(labels["component"], labels["stage"]): value
                        for labels, value
                        in samples["repro_stage_latency_seconds_count"]}
        for stage in ("admission", "reply"):
            assert stage_counts[("gateway", stage)] >= 2.0
        for stage in ("dispatch", "serve", "collect"):
            assert stage_counts[("fleet", stage)] >= 2.0

    def test_render_metrics_merges_gateway_and_fleet(self, gateway):
        page = gateway.render_metrics()
        assert page.count("# TYPE repro_stage_latency_seconds") == 1
        assert "repro_gateway_requests_total" in page
        assert "repro_fleet_requests_total" in page

    def test_stats_reports_shed_policy_state_and_slowest(self, gateway,
                                                         gw_requests):
        with GatewayClient(*gateway.address, encoding="binary") as client:
            assert client.serve_batch(gw_requests[0]).ok
        stats = gateway.stats()
        assert stats["shed_policy_state"] == {}  # AdmitAllShed is stateless
        assert stats["slowest"]
        entry = stats["slowest"][0]
        assert "trace_id" in entry and "stages_ms" in entry
        json.dumps(stats)  # the whole stats page must stay JSON-clean

    def test_watermark_stats_expose_hysteresis_state(self, gw_artifact):
        fleet = ServingFleet(gw_artifact, 1, router="round-robin",
                             batch_mode="node")
        gw = ServingGateway(fleet, owns_fleet=True,
                            shed_policy=WatermarkShed(high=0.75, low=0.5))
        try:
            gw.start()
            state = gw.stats()["shed_policy_state"]
            assert state == {"shedding": False, "high": 0.75, "low": 0.5}
        finally:
            gw.close()

    def test_telemetry_off_serves_without_traces(self, gw_artifact,
                                                 gw_requests):
        fleet = ServingFleet(gw_artifact, 1, router="round-robin",
                             batch_mode="node", telemetry=False)
        gw = ServingGateway(fleet, owns_fleet=True, telemetry=False)
        try:
            gw.start()
            with GatewayClient(*gw.address, encoding="binary") as client:
                reply = client.serve_batch(gw_requests[0])
            assert reply.ok
            assert reply.trace_id is None
            assert reply.stages is None
            assert gw.slowest(5) == []
            assert fleet.slowest(5) == []
            # counters are exact with or without telemetry
            assert gw.served == 1
            assert fleet.completed == 1
        finally:
            gw.close()

    def test_constructor_validation(self, gateway):
        with pytest.raises(ServingError):
            ServingGateway(gateway.fleet, max_inflight=0)
        with pytest.raises(ServingError):
            ServingGateway(gateway.fleet, autoscale_interval=0)
        with pytest.raises(ServingError):
            ServingGateway(gateway.fleet, scale_cooldown=-1)


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestGatewayAdmission:
    def test_watermark_burst_sheds_and_accounts_exactly(self, gw_artifact,
                                                        gw_requests):
        fleet = ServingFleet(gw_artifact, 1, router="round-robin",
                            batch_mode="node")
        gateway = ServingGateway(
            fleet, owns_fleet=True, max_inflight=4,
            shed_policy=WatermarkShed(high=0.5, low=0.25,
                                      retry_after_ms=25.0))
        gateway.start()
        try:
            with GatewayClient(*gateway.address,
                               encoding="binary") as client:
                count = len([client.submit(r)
                             for r in gw_requests * 4])  # 48 >> cap 4
                replies = client.drain(count)
            ok = sum(r.ok for r in replies.values())
            shed = [r for r in replies.values() if r.status == "shed"]
            assert ok + len(shed) == count
            assert shed, "the burst never tripped the watermark"
            assert all(r.retry_after_ms is not None
                       and r.retry_after_ms > 0 for r in shed)
            stats = gateway.stats()
            assert stats["offered"] == count
            assert stats["served"] == ok
            assert stats["shed"] == len(shed)
            assert stats["errors"] == 0
            assert stats["inflight"] == 0
        finally:
            gateway.close()
        # close is idempotent and flips the draining flag
        gateway.close()
        assert gateway.stats()["draining"] is True
        with pytest.raises(OSError):
            socket.create_connection(gateway.address, timeout=1.0)

    def test_hard_cap_sheds_with_fallback_hint(self, gw_artifact,
                                               gw_requests):
        fleet = ServingFleet(gw_artifact, 1, router="round-robin",
                            batch_mode="node")
        gateway = ServingGateway(fleet, owns_fleet=True, max_inflight=1,
                                 shed_policy=AdmitAllShed())
        gateway.start()
        try:
            with GatewayClient(*gateway.address,
                               encoding="binary") as client:
                count = len([client.submit(r) for r in gw_requests])
                replies = client.drain(count)
            shed = [r for r in replies.values() if r.status == "shed"]
            assert shed, "the 1-slot cap never rejected a burst request"
            # the backstop still hints (>= the 50 ms floor)
            assert all(r.retry_after_ms >= 50.0 for r in shed)
            stats = gateway.stats()
            assert stats["served"] + stats["shed"] == stats["offered"]
        finally:
            gateway.close()


# ----------------------------------------------------------------------
# Autoscaling
# ----------------------------------------------------------------------
class TestGatewayAutoscale:
    def test_burst_scales_up_then_back_down(self, gw_artifact, gw_requests):
        import time

        fleet = ServingFleet(gw_artifact, 1, router="round-robin",
                            batch_mode="node")
        gateway = ServingGateway(
            fleet, owns_fleet=True, max_inflight=1024,
            scale_policy=QueueDepthScale(min_replicas=1, max_replicas=2,
                                         up_backlog=2.0, down_backlog=0.5),
            autoscale_interval=0.05, scale_cooldown=0.3)
        gateway.start()
        try:
            with GatewayClient(*gateway.address,
                               encoding="binary") as client:
                client.serve_batch(gw_requests[0])  # warm the replica
                count = len([client.submit(r) for r in gw_requests * 8])
                replies = client.drain(count)
                assert all(r.ok for r in replies.values())
                events = list(gateway.scale_events)
                assert any(e["action"] == "up" for e in events)
                up = next(e for e in events if e["action"] == "up")
                assert (up["from"], up["to"]) == (1, 2)
                assert up["queue_depth"] >= 2
                assert up["t_s"] >= 0
                # traffic is gone: the policy walks the fleet back down
                deadline = time.monotonic() + 30.0
                while (gateway.fleet.num_replicas > 1
                       and time.monotonic() < deadline):
                    time.sleep(0.05)
                assert gateway.fleet.num_replicas == 1
                assert any(e["action"] == "down"
                           for e in gateway.scale_events)
                assert client.serve_batch(gw_requests[0]).ok
        finally:
            gateway.close()


# ----------------------------------------------------------------------
# api.open_gateway
# ----------------------------------------------------------------------
class TestOpenGateway:
    def test_round_trip_and_owned_fleet_closes(self, gw_bundle, gw_requests):
        gateway = api.open_gateway(gw_bundle, 1)
        try:
            assert gateway.port != 0
            with GatewayClient(*gateway.address) as client:
                assert client.serve_batch(gw_requests[0]).ok
            assert gateway.stats()["shed_policy"] == "watermark"
        finally:
            gateway.close()
        with pytest.raises(ServingError):
            gateway.fleet.submit_batch(gw_requests[0])

    def test_policy_options_forwarded(self, gw_bundle):
        gateway = api.open_gateway(
            gw_bundle, 1, scale_policy="queue-depth",
            scale_options={"min_replicas": 1, "max_replicas": 3},
            shed_policy="watermark", shed_options={"high": 0.9},
            start=False)
        try:
            assert isinstance(gateway.scale_policy, QueueDepthScale)
            assert gateway.scale_policy.max_replicas == 3
            assert isinstance(gateway.shed_policy, WatermarkShed)
            assert gateway.shed_policy.high == 0.9
        finally:
            gateway.close()

    def test_policy_instances_pass_through(self, gw_bundle):
        shed = WatermarkShed(high=0.6)
        gateway = api.open_gateway(gw_bundle, 1, shed_policy=shed,
                                   scale_policy=PinnedScale(), start=False)
        try:
            assert gateway.shed_policy is shed
            assert isinstance(gateway.scale_policy, PinnedScale)
        finally:
            gateway.close()


# ----------------------------------------------------------------------
# Benchmark schema and gates
# ----------------------------------------------------------------------
def _fake_gateway_result():
    side = {"replicas": 2, "requests": 48, "served": 48, "wall_s": 1.0,
            "requests_per_s": 48.0, "latency_p50_ms": 5.0,
            "latency_p95_ms": 9.0, "latency_p99_ms": 11.0}
    return {
        "schema_version": 2, "kind": "gateway-benchmark",
        "dataset": "pubmed-sim", "method": "mcond", "budget": 20, "seed": 0,
        "scale": 1.0, "deployment": "original", "batch_mode": "node",
        "router": "round-robin", "replicas": 2, "num_requests": 48,
        "nodes_per_request": 8, "usable_cores": 1,
        "artifact": {"layout": "mmap", "bytes": 4096},
        "throughput": {"in_process": dict(side), "socket": dict(side),
                       "socket_ratio": 1.0},
        "shedding": {"offered": 96, "served": 40, "shed": 56, "errors": 0,
                     "max_inflight": 8, "replies_ok": 40,
                     "replies_shed": 56, "replies_error": 0,
                     "shed_with_retry_hint": 56, "accounting_exact": True},
        "autoscale": {"requests": 200, "served": 198, "shed": 2, "lost": 0,
                      "ramp": {"start_rate": 100.0, "end_rate": 1200.0,
                               "duration_s": 1.5, "peak_s": 1.5},
                      "scaled_up": True, "scale_up_reaction_s": 0.4,
                      "peak_replicas": 2, "max_replicas": 2,
                      "scaled_down": True, "post_scale_down_probe_ok": True,
                      "events": []},
        "parity": {"paths": {"graph": True, "node": True, "frozen": True},
                   "gateway_bitwise_equal": True},
        "telemetry": {"replicas": 2, "requests": 48, "repeats": 2,
                      "instrumented_rps": 49.0, "uninstrumented_rps": 50.0,
                      "overhead_ratio": 0.98, "parity_bitwise_equal": True,
                      "slowest_trace_stages": ["admission", "collect",
                                               "dispatch", "reply", "serve"],
                      "slowest_has_all_stages": True},
    }


class TestGatewayBenchContract:
    def test_schema_accepts_complete_result(self):
        check_gateway_benchmark_schema(_fake_gateway_result())

    @pytest.mark.parametrize("key", ["throughput", "shedding", "autoscale",
                                     "parity", "telemetry"])
    def test_schema_rejects_missing_sections(self, key):
        result = _fake_gateway_result()
        del result[key]
        with pytest.raises(ServingError):
            check_gateway_benchmark_schema(result)

    def test_schema_rejects_wrong_kind(self):
        result = _fake_gateway_result()
        result["kind"] = "fleet-benchmark"
        with pytest.raises(ServingError):
            check_gateway_benchmark_schema(result)

    def test_gate_passes_clean_result(self):
        assert gate_gateway_benchmark(_fake_gateway_result()) == []

    def test_gate_fails_slow_socket(self):
        result = _fake_gateway_result()
        result["throughput"]["socket_ratio"] = 0.5
        assert any("below" in f for f in gate_gateway_benchmark(result))
        assert gate_gateway_benchmark(result, min_socket_ratio=0.4) == []

    def test_gate_fails_silent_shedding(self):
        result = _fake_gateway_result()
        result["shedding"]["shed"] = 0
        assert any("never shed" in f for f in gate_gateway_benchmark(result))

    def test_gate_fails_inexact_accounting(self):
        result = _fake_gateway_result()
        result["shedding"]["accounting_exact"] = False
        assert any("not exact" in f for f in gate_gateway_benchmark(result))

    def test_gate_fails_missing_retry_hints(self):
        result = _fake_gateway_result()
        result["shedding"]["shed_with_retry_hint"] = 0
        assert any("retry-after" in f for f in gate_gateway_benchmark(result))

    def test_gate_fails_lost_requests(self):
        result = _fake_gateway_result()
        result["autoscale"]["lost"] = 3
        assert any("lost" in f for f in gate_gateway_benchmark(result))

    def test_gate_fails_sleepy_autoscaler(self):
        result = _fake_gateway_result()
        result["autoscale"]["scaled_up"] = False
        assert any("never scaled up" in f
                   for f in gate_gateway_benchmark(result))
        result = _fake_gateway_result()
        result["autoscale"]["scale_up_reaction_s"] = 2.0  # after peak 1.5
        assert any("after the ramp peak" in f
                   for f in gate_gateway_benchmark(result))
        result = _fake_gateway_result()
        result["autoscale"]["scaled_down"] = False
        assert any("scaled back down" in f
                   for f in gate_gateway_benchmark(result))
        result = _fake_gateway_result()
        result["autoscale"]["post_scale_down_probe_ok"] = False
        assert any("probe" in f for f in gate_gateway_benchmark(result))

    def test_gate_fails_broken_parity(self):
        result = _fake_gateway_result()
        result["parity"]["gateway_bitwise_equal"] = False
        assert any("bitwise" in f for f in gate_gateway_benchmark(result))

    def test_gate_fails_expensive_telemetry(self):
        result = _fake_gateway_result()
        result["telemetry"]["overhead_ratio"] = 0.9
        assert any("uninstrumented" in f
                   for f in gate_gateway_benchmark(result))
        assert gate_gateway_benchmark(result, min_telemetry_ratio=0.85) == []

    def test_gate_fails_telemetry_changing_logits(self):
        result = _fake_gateway_result()
        result["telemetry"]["parity_bitwise_equal"] = False
        assert any("telemetry changed" in f
                   for f in gate_gateway_benchmark(result))

    def test_gate_fails_incomplete_slowest_trace(self):
        result = _fake_gateway_result()
        result["telemetry"]["slowest_has_all_stages"] = False
        result["telemetry"]["slowest_trace_stages"] = ["admission"]
        assert any("missing" in f for f in gate_gateway_benchmark(result))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestGatewayCli:
    def test_list_shows_gateway_policies(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gateway shed policies" in out
        assert "watermark" in out
        assert "gateway scale policies" in out
        assert "queue-depth" in out

    def test_bench_schema_accepts_gateway_json(self, capsys, tmp_path):
        path = tmp_path / "BENCH_gateway.json"
        write_benchmark_json(_fake_gateway_result(), path)
        assert main(["bench-schema", str(path)]) == 0

    def test_bench_schema_rejects_drifted_gateway_json(self, capsys,
                                                       tmp_path):
        result = _fake_gateway_result()
        del result["parity"]
        path = tmp_path / "BENCH_gateway.json"
        path.write_text(json.dumps(result))
        assert main(["bench-schema", str(path)]) == 2

    def test_top_polls_live_gateway(self, capsys, gateway, gw_requests):
        with GatewayClient(*gateway.address, encoding="binary") as client:
            assert client.serve_batch(gw_requests[0]).ok
        assert main(["top", "--host", gateway.host,
                     "--port", str(gateway.port)]) == 0
        out = capsys.readouterr().out
        assert "gateway" in out and "fleet" in out
        assert "admission" in out and "p95 ms" in out

    def test_top_unreachable_port_exits_2(self, capsys):
        assert main(["top", "--port", "1"]) == 2
        assert "cannot scrape" in capsys.readouterr().err

    def test_serve_gateway_bad_artifact_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"not an artifact")
        assert main(["serve-gateway", "--artifact", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err
