"""Task-typed serving: ServeTask, executors, wire v2, shims, invalidation."""

from __future__ import annotations

import io

import numpy as np
import pytest
import scipy.sparse as sp

from repro import api
from repro.errors import ServingError
from repro.graph.datasets import IncrementalBatch
from repro.graph.stream import make_delta_trace
from repro.registry import TASKS
from repro.serving import (
    EmbeddingIndex,
    GatewayClient,
    PreparedDeployment,
    ServeTask,
    ServingFleet,
    ServingGateway,
    auc_score,
    score_pairs,
    sidecar_index_path,
    split_requests,
    tasked_requests,
)
from repro.serving.stream_bench import _pad_incremental
from repro.serving.protocol import (
    ProtocolError,
    decode_serve_request,
    encode_frame,
    encode_serve_request,
    read_frame_from,
)


# ----------------------------------------------------------------------
# Shared artifacts (module-cached: deploys and process spawns are slow)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def task_bundle():
    return api.deploy("tiny-sim", "mcond", 9, profile="quick",
                      deployment="original")


@pytest.fixture(scope="module")
def task_artifact(task_bundle, tmp_path_factory):
    root = tmp_path_factory.mktemp("task-artifacts")
    artifact = task_bundle.save(root / "original.npz", layout="mmap")
    # the sidecar index replicas probe for and memory-map on startup
    api.save_embedding_index(task_bundle, artifact)
    return artifact


@pytest.fixture(scope="module")
def task_requests(task_bundle):
    return split_requests(api.evaluation_batch(task_bundle), 8, 2)


@pytest.fixture(scope="module")
def prepared(task_bundle):
    return task_bundle.prepare()


@pytest.fixture(scope="module")
def task_fleet(task_artifact):
    with ServingFleet(task_artifact, 1, router="round-robin",
                      batch_mode="node") as fleet:
        yield fleet


@pytest.fixture(scope="module")
def task_gateway(task_artifact):
    fleet = ServingFleet(task_artifact, 1, router="round-robin",
                         batch_mode="node")
    gw = ServingGateway(fleet, max_inflight=64, owns_fleet=True)
    gw.start()
    yield gw
    gw.close()


def _toy_batch(n: int = 3, d: int = 4, total: int = 10) -> IncrementalBatch:
    rng = np.random.default_rng(5)
    return IncrementalBatch(
        features=rng.standard_normal((n, d)),
        incremental=sp.random(n, total, density=0.4, random_state=3,
                              format="csr", dtype=np.float64),
        intra=sp.random(n, n, density=0.5, random_state=4, format="csr",
                        dtype=np.float64),
        labels=np.full(n, -1, dtype=np.int64))


# ----------------------------------------------------------------------
# The request object
# ----------------------------------------------------------------------
class TestServeTask:
    def test_registry_covers_all_tasks(self):
        assert set(TASKS.keys()) == {"predict", "embed", "link_score",
                                     "topk"}
        for _, entry in TASKS.items():
            assert entry.description

    def test_rejects_non_batch(self):
        with pytest.raises(ServingError, match="IncrementalBatch"):
            ServeTask(batch=np.zeros((2, 3)))

    def test_rejects_unknown_task(self):
        with pytest.raises(ServingError, match="unknown serving task"):
            ServeTask(batch=_toy_batch(), task="classify")

    def test_rejects_bad_scorer_and_k(self):
        with pytest.raises(ServingError, match="scorer"):
            ServeTask(batch=_toy_batch(), scorer="cosine")
        with pytest.raises(ServingError, match="k >= 1"):
            ServeTask(batch=_toy_batch(), task="topk", k=0)

    def test_link_score_needs_well_formed_pairs(self):
        with pytest.raises(ServingError, match="needs pairs"):
            ServeTask(batch=_toy_batch(), task="link_score")
        with pytest.raises(ServingError, match=r"\(p, 2\)"):
            ServeTask(batch=_toy_batch(), task="link_score",
                      pairs=np.zeros((4, 3), dtype=np.int64))

    def test_result_rows(self):
        batch = _toy_batch(n=3)
        pairs = np.array([[0, 1], [2, 4], [1, 0], [0, 9], [2, 2]])
        assert ServeTask(batch=batch).result_rows() == 3
        link = ServeTask(batch=batch, task="link_score", pairs=pairs)
        assert link.result_rows() == 5
        assert link.pairs.dtype == np.int64

    def test_tasked_requests_wraps_every_batch(self, task_requests):
        tasks = tasked_requests(task_requests, "topk", k=3)
        assert all(t.task == "topk" and t.k == 3 for t in tasks)
        link = tasked_requests(task_requests, "link_score", num_pairs=4)
        assert all(t.pairs.shape == (4, 2) for t in link)


# ----------------------------------------------------------------------
# Executors against PreparedDeployment
# ----------------------------------------------------------------------
class TestExecutors:
    def test_predict_is_bitwise_identical_to_serve_batch(self, prepared,
                                                         task_requests):
        batch = task_requests[0]
        direct, _, _ = prepared.serve_batch(batch, "node")
        tasked, _, _ = prepared.serve_task(
            ServeTask(batch=batch), batch_mode="node")
        assert np.array_equal(direct, tasked)

    def test_embed_matches_embed_batch(self, prepared, task_requests):
        batch = task_requests[0]
        direct, _, _ = prepared.embed_batch(batch, "node")
        tasked, _, _ = prepared.serve_task(
            ServeTask(batch=batch, task="embed"), batch_mode="node")
        assert np.array_equal(direct, tasked)
        assert tasked.shape[0] == batch.num_nodes

    def test_link_score_combines_cached_endpoints(self, prepared,
                                                  task_requests):
        batch = task_requests[1]
        pairs = np.array([[0, 0], [1, 3], [0, 7], [1, 1]])
        for scorer in ("dot", "hadamard"):
            task = ServeTask(batch=batch, task="link_score", pairs=pairs,
                             scorer=scorer)
            scores, _, _ = prepared.serve_task(task, batch_mode="node")
            request_side, _, _ = prepared.embed_batch(batch, "node")
            expected = score_pairs(request_side[pairs[:, 0]],
                                   prepared.base_embeddings()[pairs[:, 1]],
                                   scorer)
            assert np.array_equal(scores, expected)

    def test_topk_packs_exact_cosine_neighbors(self, prepared,
                                               task_requests):
        batch, k = task_requests[2], 4
        rows, _, _ = prepared.serve_task(
            ServeTask(batch=batch, task="topk", k=k), batch_mode="node")
        assert rows.shape == (batch.num_nodes, 2 * k)
        queries, _, _ = prepared.embed_batch(batch, "node")

        def unit(m):
            norms = np.linalg.norm(m, axis=1, keepdims=True)
            return np.where(norms > 0, m / np.where(norms == 0, 1, norms),
                            0.0)

        sims = unit(queries) @ unit(prepared.base_embeddings()).T
        for row in range(batch.num_nodes):
            order = np.argsort(-sims[row], kind="stable")[:k]
            assert np.array_equal(rows[row, :k].astype(np.int64), order)
            assert np.array_equal(rows[row, k:], sims[row][order])

    def test_attached_index_answers_match_lazy_build(self, task_bundle,
                                                     task_artifact,
                                                     task_requests):
        lazy = task_bundle.prepare()
        attached = task_bundle.prepare()
        attached.attach_embedding_index(
            EmbeddingIndex.load(sidecar_index_path(task_artifact),
                                mmap=True))
        task = ServeTask(batch=task_requests[0], task="topk", k=3)
        want, _, _ = lazy.serve_task(task, batch_mode="node")
        got, _, _ = attached.serve_task(task, batch_mode="node")
        assert np.array_equal(want, got)


class TestEmbeddingIndex:
    def test_save_load_mmap_parity(self, tmp_path):
        matrix = np.random.default_rng(3).standard_normal((6, 4))
        index = EmbeddingIndex(matrix)
        path = index.save(tmp_path / "embed.npz")
        loaded = EmbeddingIndex.load(path, mmap=True)
        assert np.array_equal(loaded.embeddings, index.embeddings)
        assert np.array_equal(loaded.normalized, index.normalized)
        ids, scores = index.topk(matrix[:2], 3)
        ids2, scores2 = loaded.topk(matrix[:2], 3)
        assert np.array_equal(ids, ids2)
        assert np.array_equal(scores, scores2)
        assert ids[0, 0] == 0  # a row is its own nearest neighbour

    def test_topk_rejects_oversized_k(self):
        index = EmbeddingIndex(np.eye(3))
        with pytest.raises(ServingError, match="only 3 base nodes"):
            index.topk(np.eye(3), 4)

    def test_sidecar_path_rides_the_artifact(self, tmp_path):
        assert sidecar_index_path(tmp_path / "a.npz").name \
            == "a.embeddings.npz"

    def test_auc_sanity(self):
        labels = np.array([1, 1, 0, 0])
        assert auc_score(np.array([4.0, 3.0, 2.0, 1.0]), labels) == 1.0
        assert auc_score(np.array([1.0, 2.0, 3.0, 4.0]), labels) == 0.0
        assert auc_score(np.zeros(4), labels) == 0.5
        with pytest.raises(ServingError, match="positive and negative"):
            auc_score(np.zeros(2), np.ones(2))


# ----------------------------------------------------------------------
# Deprecated keyword shims (one warning each, results unchanged)
# ----------------------------------------------------------------------
class TestDeprecatedShims:
    def test_runtime_raw_array_submit_warns(self, task_bundle,
                                            task_requests):
        batch = task_requests[0]
        with api.open_runtime(task_bundle, batch_mode="node") as runtime:
            with pytest.warns(DeprecationWarning,
                              match="ServingRuntime.submit"):
                legacy = runtime.submit(batch.features, batch.incremental,
                                        batch.intra)
            legacy = legacy.result(timeout=30.0)
            modern = runtime.submit(ServeTask(batch=batch)).result(
                timeout=30.0)
        assert np.array_equal(legacy, modern)

    def test_runtime_rejects_task_plus_arrays(self, task_bundle,
                                              task_requests):
        batch = task_requests[0]
        with api.open_runtime(task_bundle, batch_mode="node") as runtime:
            with pytest.raises(ServingError, match="no array arguments"):
                runtime.submit(ServeTask(batch=batch),
                               incremental=batch.incremental)

    def test_fleet_raw_array_submit_warns(self, task_fleet, prepared,
                                          task_requests):
        batch = task_requests[0]
        with pytest.warns(DeprecationWarning, match="ServingFleet.submit"):
            future = task_fleet.submit(batch.features, batch.incremental,
                                       batch.intra)
        direct, _, _ = prepared.serve_batch(batch, "node")
        assert np.array_equal(future.result(timeout=60.0), direct)

    def test_gateway_client_batch_submit_warns(self, task_gateway,
                                               task_requests):
        batch = task_requests[0]
        with GatewayClient(task_gateway.host, task_gateway.port) as client:
            with pytest.warns(DeprecationWarning,
                              match="GatewayClient.submit"):
                request_id = client.submit(batch)
            reply = client.drain(1)[request_id]
        assert reply.status == "ok"


# ----------------------------------------------------------------------
# Wire protocol v2 and the v1 back-compat matrix
# ----------------------------------------------------------------------
def _round_trip_frame(frame):
    header, payload = read_frame_from(io.BytesIO(frame).read)
    return decode_serve_request(header, payload)


class TestProtocolVersions:
    @pytest.mark.parametrize("version", [1, 2])
    @pytest.mark.parametrize("encoding", ["json", "binary"])
    def test_decode_matrix_defaults_to_predict(self, version, encoding):
        batch = _toy_batch()
        frame = encode_serve_request(3, batch, encoding=encoding,
                                     version=version)
        request = _round_trip_frame(frame)
        assert request.task == "predict"
        assert request.to_task().task == "predict"
        assert np.array_equal(request.batch.features, batch.features)
        assert np.array_equal(request.batch.incremental.toarray(),
                              batch.incremental.toarray())

    @pytest.mark.parametrize("encoding", ["json", "binary"])
    def test_v2_task_fields_round_trip(self, encoding):
        batch = _toy_batch()
        pairs = np.array([[0, 1], [2, 7]], dtype=np.int64)
        topk = _round_trip_frame(encode_serve_request(
            4, ServeTask(batch=batch, task="topk", k=3), encoding=encoding))
        assert (topk.task, topk.k) == ("topk", 3)
        link = _round_trip_frame(encode_serve_request(
            5, ServeTask(batch=batch, task="link_score", pairs=pairs,
                         scorer="hadamard"), encoding=encoding))
        assert (link.task, link.scorer) == ("link_score", "hadamard")
        assert np.array_equal(link.to_task().pairs, pairs)

    def test_predict_v2_frame_is_byte_identical_to_v1_payload(self):
        batch = _toy_batch()
        v1 = encode_serve_request(6, batch, version=1)
        v2 = encode_serve_request(6, ServeTask(batch=batch), version=2)
        # same header/payload; only the version byte in the prefix moves
        assert v1[5:] == v2[5:]

    def test_v1_cannot_carry_non_predict_tasks(self):
        task = ServeTask(batch=_toy_batch(), task="embed")
        with pytest.raises(ServingError, match="needs protocol v2"):
            encode_serve_request(7, task, version=1)

    def test_unknown_task_rejected_at_decode(self):
        frame = encode_serve_request(8, ServeTask(batch=_toy_batch()))
        header, payload = read_frame_from(io.BytesIO(frame).read)
        header["task"] = "classify"
        with pytest.raises(ProtocolError, match="unknown serving task"):
            decode_serve_request(header, payload)

    def test_unknown_task_gets_structured_error_reply(self, task_gateway):
        """A bad task draws an error reply; the connection stays usable."""
        batch = _toy_batch(n=2)
        with GatewayClient(task_gateway.host, task_gateway.port) as client:
            frame = encode_serve_request(1, ServeTask(batch=batch))
            header, payload = read_frame_from(io.BytesIO(frame).read)
            header["task"] = "classify"
            client._sock.sendall(encode_frame(header, payload))
            reply = client._read_reply()
            assert reply.status == "error"
            assert "unknown serving task" in reply.error
            assert client.ping().status == "pong"


# ----------------------------------------------------------------------
# Every task through runtime, fleet, and gateway — one surface
# ----------------------------------------------------------------------
def _all_task_requests(batch):
    pairs = np.array([[0, 0], [1, 5], [0, 3]], dtype=np.int64)
    return [ServeTask(batch=batch),
            ServeTask(batch=batch, task="embed"),
            ServeTask(batch=batch, task="link_score", pairs=pairs),
            ServeTask(batch=batch, task="topk", k=3)]


class TestEveryLayerServesEveryTask:
    def test_runtime(self, task_bundle, prepared, task_requests):
        batch = task_requests[3]
        with api.open_runtime(task_bundle, batch_mode="node") as runtime:
            for task in _all_task_requests(batch):
                got = runtime.submit(task).result(timeout=30.0)
                want, _, _ = prepared.serve_task(task, batch_mode="node")
                assert np.array_equal(got, want), task.task

    def test_fleet(self, task_fleet, prepared, task_requests):
        batch = task_requests[4]
        for task in _all_task_requests(batch):
            got = task_fleet.submit_task(task).result(timeout=60.0)
            want, _, _ = prepared.serve_task(task, batch_mode="node")
            assert np.array_equal(got, want), task.task

    def test_gateway_socket_matches_direct_bitwise(self, task_gateway,
                                                   prepared, task_requests):
        batch = task_requests[5]
        with GatewayClient(task_gateway.host, task_gateway.port) as client:
            for task in _all_task_requests(batch):
                reply = client.serve_batch(task)
                assert reply.status == "ok"
                want, _, _ = prepared.serve_task(task, batch_mode="node")
                assert np.array_equal(reply.logits, want), task.task

    def test_runtime_merges_mixed_tasks_correctly(self, task_bundle,
                                                  prepared, task_requests):
        """Different tasks in one scheduler window never cross-batch.

        With the immediate scheduler (no merging) every mixed-task reply
        is bitwise identical to a direct serve.  Under micro-batch
        merging the exact path legitimately shifts — co-arriving nodes
        perturb the shared base normalization — so those replies are
        only held to shape and a coarse tolerance, which still catches
        a reply that demuxed the wrong rows or the wrong task.
        """
        with api.open_runtime(task_bundle, batch_mode="node",
                              scheduler="immediate") as runtime:
            futures = [(task, runtime.submit(task))
                       for batch in task_requests[:3]
                       for task in _all_task_requests(batch)]
            for task, future in futures:
                want, _, _ = prepared.serve_task(task, batch_mode="node")
                assert np.array_equal(future.result(timeout=30.0), want), \
                    task.task
        with api.open_runtime(task_bundle, batch_mode="node",
                              max_batch_size=16,
                              max_wait_ms=50.0) as runtime:
            futures = [(task, runtime.submit(task))
                       for batch in task_requests[:3]
                       for task in _all_task_requests(batch)]
            for task, future in futures:
                got = future.result(timeout=30.0)
                want, _, _ = prepared.serve_task(task, batch_mode="node")
                assert got.shape == want.shape, task.task
                # topk ranks and near-zero link dots are too sensitive
                # to the merge perturbation for a numeric bound
                if task.task in ("predict", "embed"):
                    assert np.allclose(got, want, rtol=0.05, atol=0.05), \
                        task.task


# ----------------------------------------------------------------------
# apply_delta invalidation of the embedding caches
# ----------------------------------------------------------------------
class TestDeltaInvalidation:
    def test_invalidate_embeddings_drops_both_caches(self, task_bundle):
        fresh = task_bundle.prepare()
        before = fresh.base_embeddings()
        assert fresh.embedding_index() is fresh.embedding_index()
        fresh.invalidate_embeddings()
        assert fresh._base_embeddings is None
        assert fresh._embedding_index is None
        assert np.array_equal(fresh.base_embeddings(), before)

    def test_apply_delta_refreshes_stale_mmap_index(self, task_bundle,
                                                    task_artifact,
                                                    task_requests):
        """The ISSUE contract: after each delta, embed/topk answers on a
        deployment with a pre-delta mmap index match a from-scratch
        prepare on the evolved graph — zero stale rows."""
        evolving = task_bundle.prepare()
        evolving.attach_embedding_index(
            EmbeddingIndex.load(sidecar_index_path(task_artifact),
                                mmap=True))
        batch = api.evaluation_batch(task_bundle)
        pool = batch.subset(np.arange(6))
        trace = make_delta_trace(task_bundle.base, pool, num_deltas=3,
                                 nodes_per_delta=2, edges_per_delta=3,
                                 removals_per_delta=1,
                                 updates_per_delta=1, seed=11)
        probe = task_requests[6]
        for delta in trace:
            report = evolving.apply_delta(delta)
            assert "embeddings" in report.invalidated
            fresh = PreparedDeployment(task_bundle.model(), "original",
                                       evolving.base)
            padded = _pad_incremental(probe, evolving.num_base)
            task = ServeTask(batch=padded, task="topk", k=3)
            got, _, _ = evolving.serve_task(task, batch_mode="node")
            want, _, _ = fresh.serve_task(task, batch_mode="node")
            assert np.array_equal(got, want)
            got_e, _, _ = evolving.embed_batch(padded, "node")
            want_e, _, _ = fresh.embed_batch(padded, "node")
            assert np.array_equal(got_e, want_e)

    def test_attach_rejects_wrong_size_index(self, task_bundle):
        fresh = task_bundle.prepare()
        wrong = EmbeddingIndex(np.zeros((fresh.num_base + 1, 2)))
        with pytest.raises(ServingError):
            fresh.attach_embedding_index(wrong)
