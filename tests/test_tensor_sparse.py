"""Sparse-constant matmul support and memory accounting."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.tensor import (
    Tensor,
    dense_memory_bytes,
    grad,
    gradcheck,
    mul,
    sparse_memory_bytes,
    spmm,
    tensor_sum,
    to_csr,
)

RNG = np.random.default_rng(3)


class TestToCsr:
    def test_from_dense(self):
        dense = np.array([[1.0, 0.0], [0.0, 2.0]])
        csr = to_csr(dense)
        assert sp.issparse(csr)
        assert csr.nnz == 2

    def test_from_coo(self):
        coo = sp.coo_matrix(np.eye(3))
        assert to_csr(coo).format == "csr"

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            to_csr(np.ones(3))


class TestSpmm:
    def test_matches_dense_product(self):
        matrix = sp.random(6, 5, density=0.4, random_state=0, format="csr")
        dense = RNG.standard_normal((5, 3))
        out = spmm(matrix, Tensor(dense))
        assert np.allclose(out.data, matrix.toarray() @ dense)

    def test_gradcheck(self):
        matrix = to_csr(RNG.random((5, 4)) * (RNG.random((5, 4)) > 0.5))
        h = Tensor(RNG.standard_normal((4, 3)), requires_grad=True)
        gradcheck(lambda h: tensor_sum(mul(spmm(matrix, h), spmm(matrix, h))), [h])

    def test_double_backward(self):
        matrix = to_csr(np.array([[1.0, 2.0], [0.0, 3.0]]))
        h = Tensor(RNG.standard_normal((2, 2)), requires_grad=True)
        y = tensor_sum(mul(spmm(matrix, h), spmm(matrix, h)))
        (g1,) = grad(y, [h], create_graph=True)
        (g2,) = grad(tensor_sum(g1), [h])
        dense = matrix.toarray()
        expected = 2 * dense.T @ dense @ np.ones((2, 2))
        assert np.allclose(g2.data, expected)

    def test_vector_operand(self):
        matrix = to_csr(np.eye(3))
        v = Tensor(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(spmm(matrix, v).data, v.data)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            spmm(to_csr(np.eye(3)), Tensor(np.ones((4, 2))))

    def test_dense_first_operand_rejected(self):
        with pytest.raises(ShapeError):
            spmm(np.eye(3), Tensor(np.ones((3, 2))))


class TestMemoryAccounting:
    def test_sparse_bytes_grow_with_nnz(self):
        small = sp.identity(10, format="csr")
        large = sp.csr_matrix(np.ones((10, 10)))
        assert sparse_memory_bytes(large) > sparse_memory_bytes(small)

    def test_dense_bytes(self):
        assert dense_memory_bytes(np.zeros((4, 4))) == 4 * 4 * 8

    def test_sparse_bytes_counts_all_arrays(self):
        matrix = sp.identity(5, format="csr")
        expected = matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
        assert sparse_memory_bytes(matrix) == expected
