"""Partition invariants: exact cover, determinism, stratification, edge cases."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError, RegistryError
from repro.graph import Graph
from repro.graph.partition import (
    PARTITIONERS,
    bfs_order,
    check_partition,
    degree_balanced_partition,
    make_partitioner,
    stratified_partition,
)

STRATEGIES = ("stratified", "degree")


def _assert_exact_cover(shards, num_nodes):
    check_partition(shards, num_nodes)
    combined = np.concatenate([s for s in shards if s.size])
    assert np.array_equal(np.sort(combined), np.arange(num_nodes))


@pytest.fixture
def labeled_graph(rng) -> Graph:
    """A 60-node, 3-class graph with a mix of degrees and an isolated tail."""
    n = 60
    edges = [(i, (i + 1) % 48) for i in range(48)]          # a 48-cycle
    edges += [(0, j) for j in range(2, 12)]                  # a hub
    rows = np.array([e[0] for e in edges])
    cols = np.array([e[1] for e in edges])
    adj = sp.coo_matrix((np.ones(rows.size), (rows, cols)), shape=(n, n)).tocsr()
    adj = adj.maximum(adj.T)                                 # nodes 48..59 isolated
    features = rng.normal(size=(n, 4))
    labels = np.arange(n) % 3
    return Graph(adj, features, labels)


class TestRegistry:
    def test_strategies_registered(self):
        for name in STRATEGIES:
            assert name in PARTITIONERS
            assert callable(make_partitioner(name))

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(RegistryError):
            make_partitioner("metis")


class TestCheckPartition:
    def test_accepts_exact_cover(self):
        check_partition([np.array([0, 2]), np.array([1, 3])], 4)

    def test_accepts_empty_shards(self):
        check_partition([np.arange(4), np.empty(0, dtype=np.int64)], 4)

    def test_rejects_uncovered_nodes(self):
        with pytest.raises(GraphError, match="uncovered"):
            check_partition([np.array([0, 1])], 3)

    def test_rejects_duplicated_nodes(self):
        with pytest.raises(GraphError, match="multiple shards"):
            check_partition([np.array([0, 1]), np.array([1, 2])], 3)

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError, match="out-of-range"):
            check_partition([np.array([0, 5])], 3)

    def test_rejects_unsorted_shards(self):
        with pytest.raises(GraphError, match="sorted"):
            check_partition([np.array([1, 0, 2])], 3)


class TestPartitionInvariants:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("num_shards", (1, 2, 3, 5))
    def test_every_node_in_exactly_one_shard(self, labeled_graph, strategy,
                                             num_shards):
        shards = make_partitioner(strategy)(labeled_graph, num_shards, seed=1)
        assert len(shards) == num_shards
        _assert_exact_cover(shards, labeled_graph.num_nodes)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_seeded_determinism_across_runs(self, labeled_graph, strategy):
        fn = make_partitioner(strategy)
        first = fn(labeled_graph, 3, seed=7)
        second = fn(labeled_graph, 3, seed=7)
        assert all(np.array_equal(a, b) for a, b in zip(first, second))

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_single_shard_is_identity(self, labeled_graph, strategy):
        shards = make_partitioner(strategy)(labeled_graph, 1, seed=0)
        assert len(shards) == 1
        assert np.array_equal(shards[0], np.arange(labeled_graph.num_nodes))

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_rejects_zero_shards(self, labeled_graph, strategy):
        with pytest.raises(GraphError):
            make_partitioner(strategy)(labeled_graph, 0)

    def test_tiny_split_cover(self, tiny_split):
        graph = tiny_split.original
        for num_shards in (2, 4):
            shards = stratified_partition(graph, num_shards, seed=3)
            _assert_exact_cover(shards, graph.num_nodes)


class TestStratified:
    def test_label_histogram_within_tolerance(self, labeled_graph):
        num_shards = 3
        shards = stratified_partition(labeled_graph, num_shards, seed=0)
        labels = labeled_graph.labels
        for cls in range(3):
            expected = (labels == cls).sum() / num_shards
            for shard in shards:
                got = int((labels[shard] == cls).sum())
                # contiguous chunking puts every shard within one node of
                # its proportional share of each class
                assert abs(got - expected) <= 1

    def test_unlabeled_graph_falls_back_to_bfs_chunks(self, labeled_graph):
        unlabeled = Graph(labeled_graph.adjacency, labeled_graph.features)
        shards = stratified_partition(unlabeled, 4, seed=0)
        _assert_exact_cover(shards, unlabeled.num_nodes)

    def test_more_shards_than_class_members_yields_empty_shards(self, rng):
        # 2 classes x 2 nodes, 4 shards: chunks run dry, cover must hold.
        adj = sp.identity(4, format="csr") * 0
        graph = Graph(adj, rng.normal(size=(4, 2)), np.array([0, 0, 1, 1]))
        shards = stratified_partition(graph, 4, seed=0)
        _assert_exact_cover(shards, 4)
        assert any(s.size == 0 for s in shards)

    def test_singleton_graph(self, rng):
        graph = Graph(sp.csr_matrix((1, 1)), rng.normal(size=(1, 3)),
                      np.array([0]))
        shards = stratified_partition(graph, 3, seed=0)
        _assert_exact_cover(shards, 1)
        assert sorted(s.size for s in shards) == [0, 0, 1]

    def test_empty_graph_rejected(self):
        graph = Graph(sp.csr_matrix((0, 0)), np.zeros((0, 2)))
        with pytest.raises(GraphError):
            stratified_partition(graph, 2)


class TestDegreeBalanced:
    def test_balances_edge_mass(self, labeled_graph):
        shards = degree_balanced_partition(labeled_graph, 3)
        degrees = labeled_graph.degrees()
        loads = sorted(float(degrees[s].sum() + s.size) for s in shards)
        # LPT guarantee: no load exceeds the smallest by more than the
        # heaviest single node.
        assert loads[-1] - loads[0] <= degrees.max() + 1

    def test_isolated_nodes_spread_across_shards(self, rng):
        graph = Graph(sp.csr_matrix((9, 9)), rng.normal(size=(9, 2)))
        shards = degree_balanced_partition(graph, 3)
        assert [s.size for s in shards] == [3, 3, 3]

    def test_seed_has_no_effect(self, labeled_graph):
        first = degree_balanced_partition(labeled_graph, 3, seed=0)
        second = degree_balanced_partition(labeled_graph, 3, seed=99)
        assert all(np.array_equal(a, b) for a, b in zip(first, second))


class TestBfsOrder:
    def test_is_permutation(self, labeled_graph):
        order = bfs_order(labeled_graph, seed=2)
        assert np.array_equal(np.sort(order), np.arange(labeled_graph.num_nodes))

    def test_deterministic_per_seed(self, labeled_graph):
        assert np.array_equal(bfs_order(labeled_graph, seed=5),
                              bfs_order(labeled_graph, seed=5))

    def test_path_graph_chunks_are_connected(self, path_graph):
        order = bfs_order(path_graph, seed=0)
        # On a path, BFS from any root reaches nodes in distance order, so
        # the first three visited nodes always form a connected subpath.
        first = np.sort(order[:3])
        assert first[2] - first[0] == 2
