"""GCond and MCond reducers: components and end-to-end behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CondensationError
from repro.condense import (
    GCondConfig,
    GCondReducer,
    MCondConfig,
    MCondReducer,
    PairwiseAdjacency,
    SgcRelay,
    dense_normalize_tensor,
)
from repro.condense.gcond import pretrain_adjacency_model
from repro.graph.ops import symmetric_normalize
from repro.tensor import Tensor, grad, tensor_sum

RNG = np.random.default_rng(6)


class TestPairwiseAdjacency:
    def test_output_symmetric_zero_diagonal(self):
        model = PairwiseAdjacency(4, hidden=8, seed=0)
        features = Tensor(RNG.standard_normal((6, 4)))
        adjacency = model(features).data
        assert np.allclose(adjacency, adjacency.T)
        assert np.allclose(np.diag(adjacency), 0.0)

    def test_output_in_unit_interval(self):
        model = PairwiseAdjacency(4, hidden=8, seed=0)
        adjacency = model(Tensor(RNG.standard_normal((5, 4)))).data
        assert (adjacency >= 0).all() and (adjacency <= 1).all()

    def test_differentiable_in_features(self):
        model = PairwiseAdjacency(3, hidden=8, seed=0)
        features = Tensor(RNG.standard_normal((4, 3)), requires_grad=True)
        out = tensor_sum(model(features))
        (g,) = grad(out, [features])
        assert g.shape == features.shape

    def test_pretraining_separates_classes(self):
        model = PairwiseAdjacency(4, hidden=16, seed=0)
        rng = np.random.default_rng(0)
        classes = np.repeat([0, 1], 30)
        feats = classes[:, None] * 4.0 + rng.standard_normal((60, 4)) * 0.3
        pretrain_adjacency_model(model, feats, classes, steps=80, rng=rng)
        adjacency = model(Tensor(feats[[0, 1, 30, 31]])).data
        same = adjacency[0, 1]
        cross = adjacency[0, 2]
        assert same > cross

    def test_pretrain_shape_validation(self):
        model = PairwiseAdjacency(2, hidden=4, seed=0)
        with pytest.raises(CondensationError):
            pretrain_adjacency_model(model, np.ones((3, 2)), np.zeros(4))

    def test_pretrain_zero_steps_noop(self):
        model = PairwiseAdjacency(2, hidden=4, seed=0)
        before = model.layer_in.weight.data.copy()
        pretrain_adjacency_model(model, np.ones((3, 2)), np.zeros(3), steps=0)
        assert np.allclose(before, model.layer_in.weight.data)


class TestDenseNormalizeTensor:
    def test_matches_numpy_normalization(self):
        from repro.graph.ops import dense_symmetric_normalize
        adjacency = np.abs(RNG.standard_normal((5, 5)))
        adjacency = 0.5 * (adjacency + adjacency.T)
        np.fill_diagonal(adjacency, 0.0)
        ours = dense_normalize_tensor(Tensor(adjacency)).data
        reference = dense_symmetric_normalize(adjacency, self_loops=True)
        assert np.allclose(ours, reference, atol=1e-6)

    def test_differentiable(self):
        adjacency = Tensor(np.abs(RNG.standard_normal((4, 4))),
                           requires_grad=True)
        out = tensor_sum(dense_normalize_tensor(adjacency))
        (g,) = grad(out, [adjacency])
        assert g.shape == (4, 4)

    def test_rejects_nonsquare(self):
        with pytest.raises(CondensationError):
            dense_normalize_tensor(Tensor(np.ones((2, 3))))


class TestSgcRelay:
    def test_propagation_matches_embed_tensor(self, tiny_split):
        graph = tiny_split.original
        relay = SgcRelay(graph.feature_dim, tiny_split.num_classes, k_hops=2)
        operator = symmetric_normalize(graph.adjacency)
        const = relay.propagate_const(operator, graph.features)
        dense_operator = Tensor(operator.toarray())
        tensor_version = relay.embed_tensor(dense_operator,
                                            Tensor(graph.features)).data
        assert np.allclose(const, tensor_version, atol=1e-8)

    def test_reinit_changes_parameters(self):
        relay = SgcRelay(4, 3, seed=0)
        before = relay.classifier.weight.data.copy()
        relay.reinit(99)
        assert not np.allclose(before, relay.classifier.weight.data)

    def test_fit_steps_reduce_loss(self):
        relay = SgcRelay(4, 2, seed=0)
        embedding = np.vstack([RNG.standard_normal((20, 4)) + 3,
                               RNG.standard_normal((20, 4)) - 3])
        labels = np.repeat([0, 1], 20)
        loss_before = relay.classifier_loss(Tensor(embedding), labels).item()
        relay.fit_steps(embedding, labels, steps=50, lr=0.1)
        loss_after = relay.classifier_loss(Tensor(embedding), labels).item()
        assert loss_after < loss_before


class TestGCondReducer:
    def test_output_structure(self, tiny_split):
        config = GCondConfig(outer_loops=1, match_steps=2,
                             adjacency_pretrain_steps=20, seed=0)
        condensed = GCondReducer(config).reduce(tiny_split, 9)
        assert condensed.num_nodes == 9
        assert condensed.method == "gcond"
        assert condensed.mapping is None  # plain GC cannot attach

    def test_labels_cover_classes_proportionally(self, tiny_split):
        config = GCondConfig(outer_loops=1, match_steps=2,
                             adjacency_pretrain_steps=10, seed=0)
        condensed = GCondReducer(config).reduce(tiny_split, 9)
        assert np.unique(condensed.labels).size == tiny_split.num_classes

    def test_config_validation(self):
        with pytest.raises(CondensationError):
            GCondConfig(outer_loops=0)
        with pytest.raises(CondensationError):
            GCondConfig(k_hops=0)


class TestMCondReducer:
    def test_result_has_histories(self, tiny_mcond_result):
        result = tiny_mcond_result
        assert len(result.mapping_losses) > 0
        assert len(result.transductive_losses) == len(result.mapping_losses)
        assert len(result.inductive_losses) == len(result.mapping_losses)

    def test_mapping_loss_decreases(self, tiny_split):
        config = MCondConfig(outer_loops=1, match_steps=2, mapping_steps=25,
                             adjacency_pretrain_steps=20, seed=0)
        reducer = MCondReducer(config)
        reducer.reduce(tiny_split, 9)
        losses = reducer.last_result.mapping_losses
        assert losses[-1] < losses[0]

    def test_condensed_supports_attachment(self, tiny_condensed):
        assert tiny_condensed.supports_attachment()
        assert tiny_condensed.method == "mcond"

    def test_mapping_shape(self, tiny_condensed, tiny_split):
        assert tiny_condensed.mapping.shape == (
            tiny_split.original.num_nodes, tiny_condensed.num_nodes)

    def test_threshold_resweep_without_retraining(self, tiny_mcond_result):
        loose = tiny_mcond_result.condensed_with_threshold(0.0)
        tight = tiny_mcond_result.condensed_with_threshold(0.3)
        assert tight.mapping.nnz <= loose.mapping.nnz

    def test_ablation_flags_skip_losses(self, tiny_split):
        config = MCondConfig(outer_loops=1, match_steps=2, mapping_steps=4,
                             adjacency_pretrain_steps=10,
                             use_inductive_loss=False, seed=0)
        reducer = MCondReducer(config)
        reducer.reduce(tiny_split, 9)
        assert reducer.last_result.inductive_losses == []

    def test_random_init_flag(self, tiny_split):
        config = MCondConfig(outer_loops=1, match_steps=2, mapping_steps=4,
                             adjacency_pretrain_steps=10,
                             class_aware_init=False, seed=0)
        reducer = MCondReducer(config)
        condensed = reducer.reduce(tiny_split, 9)
        assert condensed.supports_attachment()

    def test_config_validation(self):
        with pytest.raises(CondensationError):
            MCondConfig(mapping_steps=0)
        with pytest.raises(CondensationError):
            MCondConfig(lambda_structure=-1.0)

    def test_budget_checks(self, tiny_split):
        with pytest.raises(CondensationError):
            MCondReducer().reduce(tiny_split, 1)
