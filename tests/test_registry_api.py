"""The public API layer: registries, the facade, and DeploymentBundle."""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.condense import CondensedGraph
from repro.condense.base import FORMAT_VERSION
from repro.errors import ArtifactError, ConfigError, RegistryError
from repro.experiments import EffortProfile
from repro.nn import make_model
from repro.registry import (
    DATASETS,
    MODELS,
    REDUCERS,
    Registry,
    make_reducer,
    register_reducer,
)

FAST = EffortProfile(
    name="api-test", train_epochs=15, train_patience=10, train_lr=0.05,
    outer_loops=1, match_steps=2, mapping_steps=4, relay_steps=1,
    seeds=(0,), inference_repeats=1)


# ----------------------------------------------------------------------
# Registry mechanics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_register_and_get_case_insensitive(self):
        registry = Registry("thing")
        registry.register("Alpha", 1)
        assert registry.get("alpha") == 1
        assert registry.get("ALPHA") == 1
        assert "alpha" in registry
        assert registry.keys() == ["alpha"]

    def test_duplicate_key_rejected(self):
        registry = Registry("thing")
        registry.register("a", 1)
        with pytest.raises(RegistryError):
            registry.register("a", 2)
        assert registry.get("a") == 1

    def test_overwrite_allowed_explicitly(self):
        registry = Registry("thing")
        registry.register("a", 1)
        registry.register("a", 2, overwrite=True)
        assert registry.get("a") == 2

    def test_unknown_key_lists_available(self):
        registry = Registry("thing")
        registry.register("alpha", 1)
        registry.register("beta", 2)
        with pytest.raises(RegistryError, match="alpha, beta"):
            registry.get("gamma")

    def test_invalid_key_type(self):
        registry = Registry("thing")
        with pytest.raises(RegistryError):
            registry.register("", 1)
        with pytest.raises(RegistryError):
            registry.register(None, 1)

    def test_registry_error_is_config_error(self):
        assert issubclass(RegistryError, ConfigError)


class TestBuiltinRegistrations:
    def test_all_reducers_registered(self):
        for name in ("random", "degree", "herding", "kcenter", "vng",
                     "gcond", "mcond", "doscond"):
            assert name in REDUCERS

    def test_all_models_registered(self):
        for name in ("sgc", "gcn", "graphsage", "appnp", "cheby", "mlp"):
            assert name in MODELS

    def test_all_datasets_registered(self):
        for name in ("pubmed-sim", "flickr-sim", "reddit-sim", "tiny-sim"):
            assert name in DATASETS

    def test_make_reducer_builds_configured_instance(self):
        reducer = make_reducer("mcond", seed=3, outer_loops=1, match_steps=2,
                               mapping_steps=2)
        assert reducer.name == "mcond"
        assert reducer.config.seed == 3
        assert reducer.config.outer_loops == 1

    def test_make_reducer_unknown(self):
        with pytest.raises(RegistryError, match="mcond"):
            make_reducer("does-not-exist")

    def test_registered_plugin_reducer_reaches_pipeline(self, tiny_split):
        from repro.condense.coreset import RandomCoreset

        @register_reducer("_test-plugin", description="test-only")
        class _Plugin(RandomCoreset):
            pass

        try:
            from repro.experiments import ExperimentContext
            from repro.experiments.pipeline import prepare_dataset
            context = ExperimentContext(
                prepare_dataset("tiny-sim", seed=7), FAST)
            condensed = context.reduce("_test-plugin", 9)
            assert condensed.num_nodes == 9
        finally:
            REDUCERS.unregister("_test-plugin")
        assert "_test-plugin" not in REDUCERS

    def test_model_registry_alias_stays_live_and_readonly(self):
        from repro import nn
        from repro.nn import models
        from repro.nn.models import SGC
        from repro.registry import register_model
        register_model("_test-live-model")(SGC)
        try:
            assert "_test-live-model" in nn.MODEL_REGISTRY
            assert "_test-live-model" in models.MODEL_REGISTRY
        finally:
            MODELS.unregister("_test-live-model")
        assert "_test-live-model" not in models.MODEL_REGISTRY
        # The pre-registry mutation idiom must fail loudly, not silently.
        with pytest.raises(TypeError):
            models.MODEL_REGISTRY["_sneaky"] = SGC

    def test_make_model_records_build_recipe(self):
        model = make_model("gcn", 8, 3, seed=5, hidden=16)
        assert model.registry_name == "gcn"
        assert model.build_config == {"in_features": 8, "num_classes": 3,
                                      "seed": 5, "hidden": 16}


# ----------------------------------------------------------------------
# Artifact hardening
# ----------------------------------------------------------------------
class TestArtifactHardening:
    def test_save_load_without_npz_suffix(self, tiny_condensed, tmp_path):
        target = tmp_path / "artifact.bin"
        tiny_condensed.save(target)
        assert (tmp_path / "artifact.bin.npz").exists()
        loaded = CondensedGraph.load(target)
        assert np.allclose(loaded.adjacency, tiny_condensed.adjacency)

    def test_format_version_stamped(self, tiny_condensed, tmp_path):
        target = tmp_path / "artifact.npz"
        tiny_condensed.save(target)
        with np.load(target) as archive:
            assert int(archive["format_version"]) == FORMAT_VERSION

    def test_future_format_rejected(self, tiny_condensed, tmp_path):
        target = tmp_path / "artifact.npz"
        payload = tiny_condensed.to_payload()
        payload["format_version"] = np.asarray(FORMAT_VERSION + 1)
        np.savez_compressed(target, **payload)
        with pytest.raises(ArtifactError, match="format"):
            CondensedGraph.load(target)

    def test_versionless_archive_still_loads(self, tiny_condensed, tmp_path):
        # Files written before the stamp existed are treated as version 1.
        target = tmp_path / "legacy.npz"
        np.savez_compressed(target, **tiny_condensed.to_payload())
        loaded = CondensedGraph.load(target)
        assert loaded.num_nodes == tiny_condensed.num_nodes

    def test_missing_file_raises_artifact_error(self, tmp_path):
        with pytest.raises(ArtifactError):
            CondensedGraph.load(tmp_path / "nope.npz")

    def test_weight_save_load_roundtrip(self, tmp_path):
        model = make_model("gcn", 6, 3, seed=0, hidden=8)
        target = tmp_path / "weights"  # no suffix on purpose
        model.save_weights(target)
        clone = make_model("gcn", 6, 3, seed=99, hidden=8)
        clone.load_weights(target)
        for (name_a, a), (name_b, b) in zip(model.named_parameters(),
                                            clone.named_parameters()):
            assert name_a == name_b
            assert np.array_equal(a.data, b.data)


# ----------------------------------------------------------------------
# Facade: condense / deploy / serve
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def mcond_bundle():
    return api.deploy("tiny-sim", method="mcond", budget=9, seed=1,
                      profile=FAST)


class TestFacade:
    def test_condense_returns_condensed_graph(self):
        condensed = api.condense("tiny-sim", method="random", budget=9,
                                 seed=1, profile=FAST)
        assert isinstance(condensed, CondensedGraph)
        assert condensed.num_nodes == 9
        assert condensed.supports_attachment()

    def test_condense_unknown_method_lists_keys(self):
        with pytest.raises(RegistryError, match="mcond"):
            api.condense("tiny-sim", method="nope", budget=9, profile=FAST)

    def test_deploy_packages_synthetic_bundle(self, mcond_bundle):
        assert mcond_bundle.deployment == "synthetic"
        assert mcond_bundle.condensed is not None
        assert mcond_bundle.base is None          # small artifact by design
        assert mcond_bundle.metadata["dataset"] == "tiny-sim"
        assert mcond_bundle.metadata["method"] == "mcond"
        assert mcond_bundle.model_name == "sgc"

    def test_deploy_reuses_precomputed_condensed(self):
        condensed = api.condense("tiny-sim", method="random", budget=9,
                                 seed=1, profile=FAST)
        bundle = api.deploy("tiny-sim", condensed=condensed, seed=1,
                            profile=FAST)
        assert bundle.condensed is condensed
        assert bundle.metadata["method"] == "random"
        assert bundle.metadata["budget"] == 9

    def test_whole_baseline_deploys_original(self):
        bundle = api.deploy("tiny-sim", method="whole", seed=1, profile=FAST)
        assert bundle.deployment == "original"
        assert bundle.base is not None
        report = api.serve(bundle, batch_mode="graph")
        assert report.deployment == "original"
        assert 0.0 <= report.accuracy <= 1.0

    def test_gcond_falls_back_to_original_deployment(self):
        # GCond learns no mapping, so it cannot serve on the synthetic graph.
        bundle = api.deploy("tiny-sim", method="gcond", budget=9, seed=1,
                            profile=FAST)
        assert bundle.deployment == "original"
        assert bundle.metadata["train_on"] == "synthetic"

    def test_serve_default_batch_matches_recorded_dataset(self, mcond_bundle):
        report = api.serve(mcond_bundle, batch_mode="node")
        from repro.graph import load_dataset
        split = load_dataset("tiny-sim", seed=1)
        assert report.num_nodes == split.test_idx.size

    def test_serve_merges_multiple_batches(self, mcond_bundle):
        from repro.graph import load_dataset
        split = load_dataset("tiny-sim", seed=1)
        batch = split.incremental_batch("test")
        half = batch.num_nodes // 2
        parts = [batch.subset(np.arange(half)),
                 batch.subset(np.arange(half, batch.num_nodes))]
        merged = api.serve(mcond_bundle, parts, batch_mode="node")
        separate = [api.serve(mcond_bundle, part, batch_mode="node")
                    for part in parts]
        assert merged.num_nodes == batch.num_nodes
        assert merged.num_batches == sum(r.num_batches for r in separate)
        assert np.array_equal(
            merged.logits, np.vstack([r.logits for r in separate]))
        expected = sum(r.accuracy * r.num_nodes for r in separate)
        assert merged.accuracy == pytest.approx(expected / merged.num_nodes)

    def test_serve_rejects_empty_batch_list(self, mcond_bundle):
        with pytest.raises(ConfigError):
            api.serve(mcond_bundle, [])

    def test_operator_shapes(self, mcond_bundle):
        operator = mcond_bundle.operator()
        n = mcond_bundle.condensed.num_nodes
        assert operator.shape == (n, n)


class TestBundlePersistence:
    def test_roundtrip_bit_for_bit_serving_parity(self, mcond_bundle,
                                                  tmp_path):
        in_memory = api.serve(mcond_bundle, batch_mode="node")
        target = mcond_bundle.save(tmp_path / "bundle.npz")
        reloaded = api.DeploymentBundle.load(target)
        cold = api.serve(reloaded, batch_mode="node")
        assert cold.accuracy == in_memory.accuracy
        assert np.array_equal(cold.logits, in_memory.logits)

    def test_roundtrip_preserves_everything(self, mcond_bundle, tmp_path):
        target = mcond_bundle.save(tmp_path / "bundle")  # suffix normalized
        reloaded = api.DeploymentBundle.load(tmp_path / "bundle")
        assert reloaded.model_name == mcond_bundle.model_name
        assert reloaded.model_config == mcond_bundle.model_config
        assert reloaded.deployment == mcond_bundle.deployment
        assert reloaded.metadata == mcond_bundle.metadata
        assert set(reloaded.state) == set(mcond_bundle.state)
        for name, value in mcond_bundle.state.items():
            assert np.array_equal(reloaded.state[name], value)
        assert (reloaded.condensed.mapping.nnz
                == mcond_bundle.condensed.mapping.nnz)

    def test_whole_bundle_roundtrip(self, tmp_path):
        bundle = api.deploy("tiny-sim", method="whole", seed=1, profile=FAST)
        before = api.serve(bundle, batch_mode="graph")
        bundle.save(tmp_path / "whole.npz")
        reloaded = api.DeploymentBundle.load(tmp_path / "whole.npz")
        after = api.serve(reloaded, batch_mode="graph")
        assert np.array_equal(before.logits, after.logits)
        assert reloaded.base.num_nodes == bundle.base.num_nodes

    def test_load_rejects_bare_condensed_artifact(self, tiny_condensed,
                                                  tmp_path):
        tiny_condensed.save(tmp_path / "bare.npz")
        with pytest.raises(ArtifactError, match="CondensedGraph.load"):
            api.DeploymentBundle.load(tmp_path / "bare.npz")

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError):
            api.DeploymentBundle.load(tmp_path / "missing.npz")

    def test_bundle_validation(self, mcond_bundle):
        with pytest.raises(ConfigError):
            api.DeploymentBundle(model_name="sgc", model_config={}, state={},
                                 deployment="synthetic", condensed=None)
        with pytest.raises(ConfigError):
            api.DeploymentBundle(model_name="sgc", model_config={}, state={},
                                 deployment="original", base=None)
        with pytest.raises(ConfigError):
            api.DeploymentBundle(model_name="sgc", model_config={}, state={},
                                 deployment="sideways",
                                 condensed=mcond_bundle.condensed)
