"""Streaming graph evolution: deltas, row splicing, trace generation."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph import Graph
from repro.graph.ops import add_self_loops
from repro.graph.stream import (
    GraphDelta,
    StreamingGraph,
    make_delta_trace,
    splice_csr_rows,
)


def _random_graph(rng, n=60, density=0.08, d=5):
    adj = sp.random(n, n, density=density, random_state=17, format="csr")
    adj = adj.maximum(adj.T)
    adj.data[:] = rng.uniform(0.2, 2.0, adj.nnz)
    adj = adj.maximum(adj.T)
    features = rng.standard_normal((n, d))
    labels = rng.integers(0, 3, n)
    return Graph(adj, features, labels)


def _rebuilt(stream: StreamingGraph) -> Graph:
    """From-scratch canonical reconstruction of the stream's graph."""
    adj = stream.graph.adjacency.copy()
    adj.sum_duplicates()
    adj.sort_indices()
    return Graph(adj, stream.graph.features, stream.graph.labels)


class TestGraphDelta:
    def test_noop_detection(self):
        assert GraphDelta().is_noop()
        assert not GraphDelta(add_edges=[[0, 1]]).is_noop()
        assert not GraphDelta(add_features=np.zeros((1, 3))).is_noop()

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(GraphError, match="shape"):
            GraphDelta(add_edges=np.zeros((3, 3)))

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(GraphError, match="positive"):
            GraphDelta(add_edges=[[0, 1]], add_weights=[0.0])

    def test_update_requires_both_fields(self):
        with pytest.raises(GraphError, match="together"):
            GraphDelta(update_index=[0])

    def test_duplicate_update_index_rejected(self):
        with pytest.raises(GraphError, match="unique"):
            GraphDelta(update_index=[0, 0],
                       update_features=np.zeros((2, 3)))

    def test_labels_without_features_rejected(self):
        with pytest.raises(GraphError, match="add_labels"):
            GraphDelta(add_labels=[1])


class TestStreamingGraph:
    def test_append_nodes_with_edges(self, rng):
        graph = _random_graph(rng)
        stream = StreamingGraph(graph)
        delta = GraphDelta(add_features=rng.standard_normal((2, 5)),
                           add_labels=np.array([1, 2]),
                           add_edges=[[60, 0], [61, 3], [60, 61]])
        effect = stream.apply(delta)
        assert effect.num_nodes == 62
        assert effect.appended == 2
        new = stream.graph
        assert new.num_nodes == 62
        assert new.adjacency[60, 0] == 1.0
        assert new.adjacency[0, 60] == 1.0  # symmetric by default
        assert new.adjacency[60, 61] == 1.0
        assert new.labels[-2:].tolist() == [1, 2]
        # rows 0 and 3 were touched (gained an edge to a new node)
        assert {0, 3, 60, 61} <= set(effect.touched_rows.tolist())

    def test_add_weight_accumulates_on_existing_edge(self, rng):
        graph = _random_graph(rng)
        stream = StreamingGraph(graph)
        coo = sp.triu(stream.graph.adjacency, k=1).tocoo()
        u, v = int(coo.row[0]), int(coo.col[0])
        before = stream.graph.adjacency[u, v]
        stream.apply(GraphDelta(add_edges=[[u, v]], add_weights=[0.5]))
        assert stream.graph.adjacency[u, v] == before + 0.5
        assert stream.graph.adjacency[v, u] == before + 0.5

    def test_duplicate_added_pairs_are_summed(self, rng):
        graph = _random_graph(rng)
        stream = StreamingGraph(graph)
        nnz_before = stream.graph.adjacency.nnz
        free = None
        adj = stream.graph.adjacency
        for a in range(60):
            for b in range(a + 1, 60):
                if adj[a, b] == 0:
                    free = (a, b)
                    break
            if free:
                break
        stream.apply(GraphDelta(add_edges=[list(free), list(free)],
                                add_weights=[1.0, 2.0]))
        assert stream.graph.adjacency[free] == 3.0
        assert stream.graph.adjacency.nnz == nnz_before + 2

    def test_remove_edge(self, rng):
        graph = _random_graph(rng)
        stream = StreamingGraph(graph)
        coo = sp.triu(stream.graph.adjacency, k=1).tocoo()
        u, v = int(coo.row[0]), int(coo.col[0])
        nnz = stream.graph.adjacency.nnz
        effect = stream.apply(GraphDelta(remove_edges=[[u, v]]))
        assert stream.graph.adjacency[u, v] == 0
        assert stream.graph.adjacency[v, u] == 0
        assert stream.graph.adjacency.nnz == nnz - 2  # structural removal
        assert {u, v} == set(effect.touched_rows.tolist())

    def test_remove_missing_edge_raises(self, rng):
        graph = _random_graph(rng)
        stream = StreamingGraph(graph)
        adj = stream.graph.adjacency
        free = next((a, b) for a in range(60) for b in range(a + 1, 60)
                    if adj[a, b] == 0)
        with pytest.raises(GraphError, match="does not hold"):
            stream.apply(GraphDelta(remove_edges=[list(free)]))

    def test_add_and_remove_same_edge_conflicts(self, rng):
        graph = _random_graph(rng)
        stream = StreamingGraph(graph)
        coo = sp.triu(stream.graph.adjacency, k=1).tocoo()
        u, v = int(coo.row[0]), int(coo.col[0])
        with pytest.raises(GraphError, match="add and remove"):
            stream.apply(GraphDelta(add_edges=[[u, v]],
                                    remove_edges=[[u, v]]))

    def test_feature_update(self, rng):
        graph = _random_graph(rng)
        stream = StreamingGraph(graph)
        new_rows = rng.standard_normal((2, 5))
        effect = stream.apply(GraphDelta(update_index=[3, 7],
                                         update_features=new_rows))
        assert np.array_equal(stream.graph.features[[3, 7]], new_rows)
        assert effect.touched_rows.size == 0  # structure untouched
        assert set(effect.feature_rows.tolist()) == {3, 7}

    def test_noop_apply_returns_same_graph(self, rng):
        graph = _random_graph(rng)
        stream = StreamingGraph(graph)
        before = stream.graph
        effect = stream.apply(GraphDelta())
        assert effect.graph is before
        assert stream.version == 0

    def test_canonical_form_after_random_deltas(self, rng):
        """Property: after any delta sequence the adjacency is canonical
        (sorted, duplicate-free) and matches a from-scratch rebuild."""
        graph = _random_graph(rng)
        stream = StreamingGraph(graph)
        for step in range(8):
            n = stream.num_nodes
            add = rng.integers(0, n, size=(3, 2))
            add = add[add[:, 0] != add[:, 1]]
            delta = GraphDelta(
                add_features=rng.standard_normal((1, 5)),
                add_labels=np.array([0]),
                add_edges=np.vstack([add, [[n, rng.integers(0, n)]]]),
                update_index=[int(rng.integers(0, n))],
                update_features=rng.standard_normal((1, 5)))
            stream.apply(delta)
            adj = stream.graph.adjacency
            assert adj.has_sorted_indices
            canon = adj.copy()
            canon.sum_duplicates()
            canon.sort_indices()
            assert np.array_equal(adj.indices, canon.indices)
            assert np.array_equal(adj.data, canon.data)
            assert adj.shape == (stream.num_nodes, stream.num_nodes)
            loops = add_self_loops(adj)
            assert loops.shape[0] == stream.num_nodes

    def test_out_of_range_endpoints_rejected(self, rng):
        stream = StreamingGraph(_random_graph(rng))
        with pytest.raises(GraphError, match="out of range"):
            stream.apply(GraphDelta(add_edges=[[0, 400]]))
        with pytest.raises(GraphError, match="appended"):
            stream.apply(GraphDelta(remove_edges=[[0, 60]],
                                    add_features=np.zeros((1, 5))))


class TestSpliceCsrRows:
    def test_replace_and_append(self, rng):
        matrix = sp.random(6, 6, density=0.4, random_state=3, format="csr")
        matrix.sort_indices()
        block = sp.csr_matrix(np.array([[1.0, 0, 0, 0, 0, 0, 2.0],
                                        [0, 0, 3.0, 0, 0, 0, 0]]))
        append = sp.csr_matrix(np.array([[0, 5.0, 0, 0, 0, 0, 0]]))
        out = splice_csr_rows(matrix, np.array([1, 4]), block,
                              num_cols=7, append=append)
        assert out.shape == (7, 7)
        dense = out.toarray()
        old = matrix.toarray()
        for row in (0, 2, 3, 5):
            assert np.array_equal(dense[row, :6], old[row])
        assert dense[1, 0] == 1.0 and dense[1, 6] == 2.0
        assert dense[4, 2] == 3.0
        assert dense[6, 1] == 5.0

    def test_narrowing_rejected(self, rng):
        matrix = sp.random(4, 4, density=0.5, random_state=1, format="csr")
        with pytest.raises(GraphError, match="narrow"):
            splice_csr_rows(matrix, np.array([0]),
                            sp.csr_matrix((1, 2)), num_cols=2)

    def test_row_count_mismatch_rejected(self):
        matrix = sp.csr_matrix(np.eye(3))
        with pytest.raises(GraphError, match="rows to replace"):
            splice_csr_rows(matrix, np.array([0, 1]), sp.csr_matrix((1, 3)))


class TestMakeDeltaTrace:
    def test_deterministic_and_exact_cover(self, tiny_split):
        batch = tiny_split.incremental_batch("test")
        base = tiny_split.original
        kwargs = dict(num_deltas=4, nodes_per_delta=3, edges_per_delta=2,
                      removals_per_delta=1, updates_per_delta=2, seed=11)
        trace_a = make_delta_trace(base, batch, **kwargs)
        trace_b = make_delta_trace(base, batch, **kwargs)
        assert len(trace_a) == 4
        for da, db in zip(trace_a, trace_b):
            assert np.array_equal(da.add_features, db.add_features)
            assert np.array_equal(da.add_edges, db.add_edges)
            assert np.array_equal(da.add_weights, db.add_weights)
        # every delta appends exactly nodes_per_delta batch nodes, in order
        offset = 0
        for delta in trace_a:
            assert delta.num_new_nodes == 3
            assert np.array_equal(delta.add_features,
                                  batch.features[offset:offset + 3])
            offset += 3

    def test_trace_replays_cleanly(self, tiny_split):
        batch = tiny_split.incremental_batch("test")
        stream = StreamingGraph(tiny_split.original.copy())
        trace = make_delta_trace(tiny_split.original, batch, num_deltas=3,
                                 nodes_per_delta=2, edges_per_delta=3,
                                 removals_per_delta=2, updates_per_delta=1,
                                 seed=5)
        for delta in trace:
            stream.apply(delta)
        assert stream.num_nodes == tiny_split.original.num_nodes + 6

    def test_insufficient_batch_raises(self, tiny_split):
        batch = tiny_split.incremental_batch("test").subset(np.arange(3))
        with pytest.raises(GraphError, match="holds"):
            make_delta_trace(tiny_split.original, batch, num_deltas=4,
                             nodes_per_delta=2)
