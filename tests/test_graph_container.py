"""Graph container: validation, views, serialization."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph import Graph


class TestConstruction:
    def test_basic_properties(self, path_graph):
        assert path_graph.num_nodes == 5
        assert path_graph.num_edges == 8  # 4 undirected edges stored twice
        assert path_graph.num_undirected_edges == 4
        assert path_graph.feature_dim == 2
        assert path_graph.num_classes == 2

    def test_rejects_nonsquare_adjacency(self):
        with pytest.raises(GraphError):
            Graph(np.ones((2, 3)), np.ones((2, 2)))

    def test_rejects_feature_row_mismatch(self):
        with pytest.raises(GraphError):
            Graph(np.eye(3), np.ones((2, 2)))

    def test_rejects_1d_features(self):
        with pytest.raises(GraphError):
            Graph(np.eye(3), np.ones(3))

    def test_rejects_negative_weights(self):
        adj = np.zeros((2, 2))
        adj[0, 1] = -1.0
        with pytest.raises(GraphError):
            Graph(adj, np.ones((2, 1)))

    def test_rejects_bad_label_shape(self):
        with pytest.raises(GraphError):
            Graph(np.eye(3), np.ones((3, 1)), labels=np.array([0, 1]))

    def test_num_classes_inferred(self):
        g = Graph(np.eye(3), np.ones((3, 1)), labels=np.array([0, 2, 1]))
        assert g.num_classes == 3

    def test_num_classes_explicit_override(self):
        g = Graph(np.eye(3), np.ones((3, 1)), labels=np.array([0, 1, 1]),
                  num_classes=5)
        assert g.num_classes == 5

    def test_accepts_dense_and_sparse(self):
        dense = Graph(np.eye(2), np.ones((2, 1)))
        sparse = Graph(sp.identity(2, format="coo"), np.ones((2, 1)))
        assert dense == sparse


class TestViewsAndQueries:
    def test_degrees(self, path_graph):
        assert np.allclose(path_graph.degrees(), [1, 2, 2, 2, 1])

    def test_is_symmetric(self, path_graph):
        assert path_graph.is_symmetric()

    def test_asymmetric_detected(self):
        adj = np.zeros((2, 2))
        adj[0, 1] = 1.0
        assert not Graph(adj, np.ones((2, 1))).is_symmetric()

    def test_self_loop_detection(self, path_graph):
        assert not path_graph.has_self_loops()
        g = Graph(np.eye(2), np.ones((2, 1)))
        assert g.has_self_loops()

    def test_subgraph_preserves_edges(self, path_graph):
        sub = path_graph.subgraph(np.array([0, 1, 2]))
        assert sub.num_nodes == 3
        assert sub.num_undirected_edges == 2
        assert np.allclose(sub.features, path_graph.features[:3])

    def test_subgraph_reorders(self, path_graph):
        sub = path_graph.subgraph(np.array([4, 0]))
        assert np.allclose(sub.features[0], path_graph.features[4])
        assert sub.num_edges == 0  # nodes 4 and 0 are not adjacent

    def test_subgraph_rejects_duplicates(self, path_graph):
        with pytest.raises(GraphError):
            path_graph.subgraph(np.array([0, 0]))

    def test_subgraph_rejects_out_of_range(self, path_graph):
        with pytest.raises(GraphError):
            path_graph.subgraph(np.array([7]))

    def test_cross_adjacency(self, path_graph):
        block = path_graph.cross_adjacency(np.array([0]), np.array([1, 2]))
        assert block.shape == (1, 2)
        assert block[0, 0] == 1.0
        assert block[0, 1] == 0.0

    def test_class_counts(self, path_graph):
        assert np.array_equal(path_graph.class_counts(), [3, 2])

    def test_class_counts_requires_labels(self):
        g = Graph(np.eye(2), np.ones((2, 1)))
        with pytest.raises(GraphError):
            g.class_counts()

    def test_copy_is_deep(self, path_graph):
        clone = path_graph.copy()
        clone.features[0, 0] = 99.0
        assert path_graph.features[0, 0] != 99.0
        assert clone == path_graph or True  # structure still equal except feature
        assert clone.num_nodes == path_graph.num_nodes


class TestSerialization:
    def test_save_load_roundtrip(self, path_graph, tmp_path):
        target = tmp_path / "graph.npz"
        path_graph.save(target)
        loaded = Graph.load(target)
        assert loaded == path_graph
        assert loaded.num_classes == path_graph.num_classes

    def test_save_load_unlabeled(self, tmp_path):
        g = Graph(np.eye(3), np.random.default_rng(0).random((3, 2)))
        target = tmp_path / "unlabeled.npz"
        g.save(target)
        loaded = Graph.load(target)
        assert loaded.labels is None
        assert loaded == g

    def test_equality_against_other_type(self, path_graph):
        assert path_graph.__eq__(42) is NotImplemented
