"""The docs checker: link resolution, anchors, snippet parsing.

Loads ``tools/check_docs.py`` by path (it is a script, not a package)
and exercises the pure pieces on synthetic doc trees.  The expensive
part — replaying every documented ``repro`` invocation in ``--help``
form — runs in CI's docs job, not here.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_docs",
    Path(__file__).resolve().parent.parent / "tools" / "check_docs.py")
check_docs = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_docs)


class TestSlugs:
    def test_plain_heading(self):
        assert check_docs.github_slug("Module layout", {}) == "module-layout"

    def test_code_ticks_and_punctuation_dropped(self):
        assert (check_docs.github_slug("Two knobs named `precision`", {})
                == "two-knobs-named-precision")

    def test_duplicate_headings_get_suffixes(self):
        seen = {}
        assert check_docs.github_slug("Notes", seen) == "notes"
        assert check_docs.github_slug("Notes", seen) == "notes-1"

    def test_heading_slugs_reads_all_levels(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# Top\n\ntext\n\n### Deep dive\n")
        assert check_docs.heading_slugs(doc) == {"top", "deep-dive"}


class TestLinks:
    @pytest.fixture()
    def tree(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "a.md").write_text("# Real heading\n")
        return tmp_path

    def test_good_links_pass(self, tree, monkeypatch):
        monkeypatch.setattr(check_docs, "ROOT", tree)
        readme = tree / "README.md"
        readme.write_text("[a](docs/a.md) [anchor](docs/a.md#real-heading) "
                          "[ext](https://example.com/x#y)\n")
        assert check_docs.check_links(readme, {}) == []

    def test_broken_file_and_anchor_flagged(self, tree, monkeypatch):
        monkeypatch.setattr(check_docs, "ROOT", tree)
        readme = tree / "README.md"
        readme.write_text("[gone](docs/missing.md) [bad](docs/a.md#nope)\n")
        problems = check_docs.check_links(readme, {})
        assert len(problems) == 2
        assert any("docs/missing.md" in p for p in problems)
        assert any("#nope" in p for p in problems)

    def test_sibling_links_resolve_from_docs_dir(self, tree, monkeypatch):
        monkeypatch.setattr(check_docs, "ROOT", tree)
        sibling = tree / "docs" / "b.md"
        sibling.write_text("[a](a.md#real-heading) [up](../README.md)\n")
        (tree / "README.md").write_text("# Readme\n")
        assert check_docs.check_links(sibling, {}) == []


class TestSnippetParsing:
    def _parse(self, tmp_path, text):
        doc = tmp_path / "doc.md"
        doc.write_text(text)
        return check_docs.snippet_invocations(doc)

    def test_only_fenced_repro_lines_count(self, tmp_path):
        got = self._parse(tmp_path, (
            "repro outside-fence --x\n"
            "```bash\n"
            "repro list\n"
            "curl -s localhost:80/metrics\n"
            "# repro commented? still parsed as repro? no: starts with #\n"
            "```\n"))
        assert got == [("list", [])]

    def test_line_continuations_joined(self, tmp_path):
        got = self._parse(tmp_path, (
            "```bash\n"
            "repro condense --dataset pubmed-sim \\\n"
            "               --budget 30 --output art.npz\n"
            "```\n"))
        assert got == [("condense", ["--dataset", "--budget", "--output"])]

    def test_flag_values_and_equals_form(self, tmp_path):
        got = self._parse(tmp_path, (
            "```bash\n"
            "repro bench --gate --output=BENCH_serving.json --repeats 3\n"
            "```\n"))
        assert got == [("bench", ["--gate", "--output", "--repeats"])]

    def test_repo_docs_reference_real_subcommands(self):
        # cheap half of the CI drift check: every documented subcommand
        # must exist in the CLI parser (no subprocesses involved)
        from repro.cli import build_parser
        actions = [a for a in build_parser()._actions
                   if hasattr(a, "choices") and isinstance(a.choices, dict)]
        known = set(actions[0].choices) if actions else set()
        assert known, "could not introspect CLI subcommands"
        for path in check_docs.doc_files():
            for subcommand, _ in check_docs.snippet_invocations(path):
                assert subcommand in known, (
                    f"{path.name} documents unknown subcommand "
                    f"{subcommand!r}")
