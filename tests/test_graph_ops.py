"""Graph-matrix operations: normalization, Laplacian, statistics."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graph import (
    add_self_loops,
    adjacency_from_edges,
    connected_components_count,
    dense_symmetric_normalize,
    edge_homophily,
    laplacian,
    normalize_adjacency,
    remove_self_loops,
    row_normalize,
    symmetric_normalize,
    symmetrize,
)


def ring(n=5):
    edges = np.array([[i, (i + 1) % n] for i in range(n)])
    return adjacency_from_edges(edges, n)


class TestSelfLoops:
    def test_add_self_loops_sets_diagonal(self):
        adj = add_self_loops(ring())
        assert np.allclose(adj.diagonal(), 1.0)

    def test_add_replaces_existing_diagonal(self):
        adj = sp.identity(3, format="csr") * 5.0
        out = add_self_loops(adj, weight=2.0)
        assert np.allclose(out.diagonal(), 2.0)

    def test_remove_self_loops(self):
        adj = add_self_loops(ring())
        out = remove_self_loops(adj)
        assert out.diagonal().sum() == 0
        assert out.nnz == ring().nnz

    def test_nonsquare_rejected(self):
        with pytest.raises(GraphError):
            add_self_loops(sp.csr_matrix(np.ones((2, 3))))


class TestNormalization:
    def test_symmetric_normalization_eigenvalue_bound(self):
        norm = symmetric_normalize(ring(8)).toarray()
        eigenvalues = np.linalg.eigvalsh(norm)
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_symmetric_normalization_is_symmetric(self):
        norm = symmetric_normalize(ring(6)).toarray()
        assert np.allclose(norm, norm.T)

    def test_row_normalize_rows_sum_to_one(self):
        norm = row_normalize(ring(5), self_loops=True)
        assert np.allclose(np.asarray(norm.sum(axis=1)).reshape(-1), 1.0)

    def test_row_normalize_isolated_node_zero_row(self):
        adj = sp.csr_matrix((3, 3))
        norm = row_normalize(adj, self_loops=False)
        assert norm.nnz == 0

    def test_normalize_dispatch(self):
        # A star graph is irregular, so sym and row normalization differ.
        star = adjacency_from_edges(np.array([[0, 1], [0, 2], [0, 3]]), 4)
        sym = normalize_adjacency(star, method="sym")
        row = normalize_adjacency(star, method="row")
        assert not np.allclose(sym.toarray(), row.toarray())

    def test_normalize_unknown_method(self):
        with pytest.raises(GraphError):
            normalize_adjacency(ring(), method="bogus")

    def test_dense_matches_sparse_normalization(self):
        adj = ring(7)
        dense = dense_symmetric_normalize(adj.toarray(), self_loops=True)
        sparse = symmetric_normalize(adj, self_loops=True).toarray()
        assert np.allclose(dense, sparse)

    def test_dense_normalize_no_self_loops(self):
        adj = ring(4).toarray()
        out = dense_symmetric_normalize(adj, self_loops=False)
        assert np.allclose(out.diagonal(), 0.0)


class TestStructureStats:
    def test_symmetrize(self):
        adj = sp.csr_matrix(np.triu(np.ones((3, 3)), 1))
        sym = symmetrize(adj)
        assert (sym != sym.T).nnz == 0

    def test_homophily_perfect(self):
        adj = adjacency_from_edges(np.array([[0, 1], [2, 3]]), 4)
        labels = np.array([0, 0, 1, 1])
        assert edge_homophily(adj, labels) == 1.0

    def test_homophily_zero(self):
        adj = adjacency_from_edges(np.array([[0, 1]]), 2)
        assert edge_homophily(adj, np.array([0, 1])) == 0.0

    def test_homophily_empty_graph(self):
        assert edge_homophily(sp.csr_matrix((3, 3)), np.zeros(3)) == 0.0

    def test_connected_components(self):
        adj = adjacency_from_edges(np.array([[0, 1], [2, 3]]), 5)
        assert connected_components_count(adj) == 3

    def test_laplacian_normalized_psd(self):
        lap = laplacian(ring(6), normalized=True).toarray()
        eigenvalues = np.linalg.eigvalsh(lap)
        assert eigenvalues.min() >= -1e-9
        assert eigenvalues.max() <= 2.0 + 1e-9

    def test_laplacian_unnormalized_row_sums_zero(self):
        lap = laplacian(ring(5), normalized=False).toarray()
        assert np.allclose(lap.sum(axis=1), 0.0)


class TestAdjacencyFromEdges:
    def test_symmetric_output(self):
        adj = adjacency_from_edges(np.array([[0, 1]]), 3)
        assert adj[0, 1] == 1.0 and adj[1, 0] == 1.0

    def test_duplicate_edges_collapse(self):
        adj = adjacency_from_edges(np.array([[0, 1], [0, 1], [1, 0]]), 2)
        assert adj.nnz == 2
        assert adj.max() == 1.0

    def test_empty_edges(self):
        adj = adjacency_from_edges(np.empty((0, 2)), 4)
        assert adj.nnz == 0
        assert adj.shape == (4, 4)

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            adjacency_from_edges(np.array([[0, 9]]), 3)

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphError):
            adjacency_from_edges(np.array([[0, 1, 2]]), 3)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=3, max_value=12))
def test_symmetric_normalization_spectral_radius_property(n):
    adj = ring(n)
    norm = symmetric_normalize(adj).toarray()
    assert np.abs(np.linalg.eigvalsh(norm)).max() <= 1.0 + 1e-9
