"""Condensed-artifact serialization (offline condense -> online serve)."""

from __future__ import annotations

import numpy as np

from repro.condense import CondensedGraph
from repro.inference import run_inference
from repro.nn import make_model


class TestSaveLoad:
    def test_roundtrip_with_mapping(self, tiny_condensed, tmp_path):
        target = tmp_path / "condensed.npz"
        tiny_condensed.save(target)
        loaded = CondensedGraph.load(target)
        assert np.allclose(loaded.adjacency, tiny_condensed.adjacency)
        assert np.allclose(loaded.features, tiny_condensed.features)
        assert np.array_equal(loaded.labels, tiny_condensed.labels)
        assert loaded.method == tiny_condensed.method
        assert (loaded.mapping != tiny_condensed.mapping).nnz == 0

    def test_roundtrip_without_mapping(self, tmp_path):
        condensed = CondensedGraph(np.eye(3), np.ones((3, 4)),
                                   np.array([0, 1, 2]), method="gcond")
        target = tmp_path / "plain.npz"
        condensed.save(target)
        loaded = CondensedGraph.load(target)
        assert loaded.mapping is None
        assert loaded.method == "gcond"
        assert np.allclose(loaded.adjacency, np.eye(3))

    def test_loaded_artifact_serves(self, tiny_split, tiny_condensed, tmp_path):
        """The deployment-critical property: a reloaded artifact serves
        identically to the in-memory one."""
        target = tmp_path / "deploy.npz"
        tiny_condensed.save(target)
        loaded = CondensedGraph.load(target)
        model = make_model("sgc", tiny_split.original.feature_dim,
                           tiny_split.num_classes, seed=0)
        batch = tiny_split.incremental_batch("test")
        original = run_inference(model, "synthetic", tiny_split.original,
                                 batch, condensed=tiny_condensed,
                                 batch_mode="node")
        reloaded = run_inference(model, "synthetic", tiny_split.original,
                                 batch, condensed=loaded, batch_mode="node")
        assert np.allclose(original.logits, reloaded.logits, atol=1e-12)

    def test_storage_accounting_stable_after_roundtrip(self, tiny_condensed,
                                                       tmp_path):
        target = tmp_path / "size.npz"
        tiny_condensed.save(target)
        loaded = CondensedGraph.load(target)
        assert loaded.storage_bytes() == tiny_condensed.storage_bytes()
