"""Edge sampling for the structure loss and minibatch iteration."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph import adjacency_from_edges, iterate_minibatches, sample_edge_batch


@pytest.fixture
def adjacency():
    edges = np.array([[i, (i + 1) % 20] for i in range(20)])
    return adjacency_from_edges(edges, 20)


class TestEdgeSampling:
    def test_positive_samples_are_edges(self, adjacency, rng):
        batch = sample_edge_batch(adjacency, 16, rng)
        positives = batch.targets == 1.0
        values = np.asarray(
            adjacency[batch.rows[positives], batch.cols[positives]]).reshape(-1)
        assert np.all(values > 0)

    def test_counts_respect_negative_ratio(self, adjacency, rng):
        batch = sample_edge_batch(adjacency, 10, rng, negative_ratio=2.0)
        assert (batch.targets == 1.0).sum() == 10
        assert (batch.targets == 0.0).sum() == 20
        assert len(batch) == 30

    def test_oversampling_with_replacement(self, adjacency, rng):
        batch = sample_edge_batch(adjacency, 1000, rng)
        assert (batch.targets == 1.0).sum() == 1000

    def test_empty_graph_rejected(self, rng):
        with pytest.raises(GraphError):
            sample_edge_batch(sp.csr_matrix((4, 4)), 4, rng)

    def test_nonpositive_batch_rejected(self, adjacency, rng):
        with pytest.raises(GraphError):
            sample_edge_batch(adjacency, 0, rng)

    def test_negatives_mostly_non_edges(self, adjacency, rng):
        batch = sample_edge_batch(adjacency, 200, rng)
        negatives = batch.targets == 0.0
        values = np.asarray(
            adjacency[batch.rows[negatives], batch.cols[negatives]]).reshape(-1)
        assert (values > 0).mean() < 0.2  # single rejection round, sparse graph


class TestMinibatches:
    def test_covers_all_indices(self):
        chunks = list(iterate_minibatches(10, 3))
        combined = np.concatenate(chunks)
        assert np.array_equal(np.sort(combined), np.arange(10))
        assert [len(c) for c in chunks] == [3, 3, 3, 1]

    def test_single_batch(self):
        chunks = list(iterate_minibatches(5, 100))
        assert len(chunks) == 1 and len(chunks[0]) == 5

    def test_shuffle_permutes(self):
        rng = np.random.default_rng(0)
        chunks = list(iterate_minibatches(50, 50, rng=rng, shuffle=True))
        assert not np.array_equal(chunks[0], np.arange(50))
        assert np.array_equal(np.sort(chunks[0]), np.arange(50))

    def test_invalid_batch_size(self):
        with pytest.raises(GraphError):
            list(iterate_minibatches(5, 0))
