"""Module system, layers, initializers, optimizers, metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.nn import (
    Adam,
    APPNPPropagate,
    ChebConv,
    GCNConv,
    Linear,
    MLPBlock,
    Module,
    Parameter,
    SAGEConv,
    SGD,
    accuracy,
    confusion_matrix,
    glorot_uniform,
    macro_f1,
    predictions_from_logits,
    propagate,
)
from repro.tensor import Tensor, tensor_sum, to_csr

RNG = np.random.default_rng(4)


class TestModuleSystem:
    def test_parameter_registration(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.weight = Parameter(np.ones((2, 2)))
                self.child = Linear(2, 3, RNG)

        net = Net()
        names = [name for name, _ in net.named_parameters()]
        assert "weight" in names
        assert "child.weight" in names and "child.bias" in names
        assert len(net.parameters()) == 3

    def test_state_dict_roundtrip(self):
        layer = Linear(3, 2, RNG)
        state = layer.state_dict()
        layer.weight.data[...] = 0.0
        layer.load_state_dict(state)
        assert np.allclose(layer.weight.data, state["weight"])

    def test_state_dict_missing_key_rejected(self):
        layer = Linear(2, 2, RNG)
        with pytest.raises(ShapeError):
            layer.load_state_dict({"weight": np.zeros((2, 2))})

    def test_state_dict_shape_mismatch_rejected(self):
        layer = Linear(2, 2, RNG)
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ShapeError):
            layer.load_state_dict(state)

    def test_train_eval_propagates(self):
        block = MLPBlock([2, 4, 2], RNG)
        block.eval()
        assert all(not m.training for m in block.modules())
        block.train()
        assert all(m.training for m in block.modules())

    def test_zero_grad(self):
        layer = Linear(2, 2, RNG)
        out = tensor_sum(layer(Tensor(np.ones((1, 2)))))
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_num_parameters(self):
        layer = Linear(3, 4, RNG)
        assert layer.num_parameters() == 3 * 4 + 4


class TestInit:
    def test_glorot_bounds(self):
        w = glorot_uniform((100, 100), RNG)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= limit

    def test_glorot_rejects_1d(self):
        with pytest.raises(ShapeError):
            glorot_uniform((5,), RNG)


class TestLayers:
    def test_propagate_dispatch_sparse_dense_equal(self):
        dense = RNG.random((4, 4))
        h = Tensor(RNG.standard_normal((4, 3)))
        from_sparse = propagate(to_csr(dense), h).data
        from_tensor = propagate(Tensor(dense), h).data
        from_array = propagate(dense, h).data
        assert np.allclose(from_sparse, from_tensor)
        assert np.allclose(from_sparse, from_array)

    def test_linear_shapes(self):
        layer = Linear(3, 5, RNG)
        out = layer(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 5)

    def test_linear_invalid_dims(self):
        with pytest.raises(ShapeError):
            Linear(0, 2, RNG)

    def test_gcn_conv(self):
        conv = GCNConv(3, 4, RNG)
        out = conv(Tensor(np.eye(5)), Tensor(np.ones((5, 3))))
        assert out.shape == (5, 4)

    def test_sage_conv_uses_self_and_neighbors(self):
        conv = SAGEConv(2, 3, RNG)
        op = Tensor(np.zeros((4, 4)))  # no neighbors: output = W_self x only
        x = Tensor(RNG.standard_normal((4, 2)))
        out = conv(op, x)
        assert out.shape == (4, 3)

    def test_cheby_order_one_is_linear(self):
        conv = ChebConv(2, 2, 1, RNG)
        x = Tensor(RNG.standard_normal((3, 2)))
        out_zero_op = conv(Tensor(np.zeros((3, 3))), x)
        out_eye_op = conv(Tensor(np.eye(3)), x)
        assert np.allclose(out_zero_op.data, out_eye_op.data)

    def test_cheby_invalid_order(self):
        with pytest.raises(ShapeError):
            ChebConv(2, 2, 0, RNG)

    def test_appnp_alpha_one_limit_validation(self):
        with pytest.raises(ShapeError):
            APPNPPropagate(3, 1.0)
        with pytest.raises(ShapeError):
            APPNPPropagate(0, 0.5)

    def test_appnp_zero_operator_returns_alpha_scaled(self):
        prop = APPNPPropagate(5, 0.2)
        x = Tensor(np.ones((3, 2)))
        out = prop(Tensor(np.zeros((3, 3))), x)
        assert np.allclose(out.data, 0.2)

    def test_mlp_block_depth(self):
        block = MLPBlock([4, 8, 8, 2], RNG)
        assert block(Tensor(np.ones((3, 4)))).shape == (3, 2)
        with pytest.raises(ShapeError):
            MLPBlock([4], RNG)


class TestOptimizers:
    @staticmethod
    def quadratic_target(optimizer_factory, steps=200):
        param = Parameter(np.array([5.0, -3.0]))
        optimizer = optimizer_factory([param])
        for _ in range(steps):
            optimizer.zero_grad()
            loss = tensor_sum((param - Tensor([1.0, 2.0])) ** 2)
            loss.backward()
            optimizer.step()
        return param.data

    def test_sgd_converges(self):
        final = self.quadratic_target(lambda p: SGD(p, lr=0.1))
        assert np.allclose(final, [1.0, 2.0], atol=1e-3)

    def test_sgd_momentum_converges(self):
        final = self.quadratic_target(lambda p: SGD(p, lr=0.05, momentum=0.9))
        assert np.allclose(final, [1.0, 2.0], atol=1e-2)

    def test_adam_converges(self):
        final = self.quadratic_target(lambda p: Adam(p, lr=0.3))
        assert np.allclose(final, [1.0, 2.0], atol=1e-2)

    def test_weight_decay_shrinks_solution(self):
        plain = self.quadratic_target(lambda p: Adam(p, lr=0.3))
        decayed = self.quadratic_target(
            lambda p: Adam(p, lr=0.3, weight_decay=1.0))
        assert np.linalg.norm(decayed) < np.linalg.norm(plain)

    def test_skip_params_without_grad(self):
        a, b = Parameter(np.ones(2)), Parameter(np.ones(2))
        optimizer = SGD([a, b], lr=0.5)
        tensor_sum(a * a).backward()
        optimizer.step()
        assert np.allclose(b.data, 1.0)
        assert not np.allclose(a.data, 1.0)

    def test_apply_grads(self):
        param = Parameter(np.zeros(2))
        optimizer = SGD([param], lr=1.0)
        optimizer.apply_grads([Tensor(np.array([1.0, 2.0]))])
        optimizer.step()
        assert np.allclose(param.data, [-1.0, -2.0])

    def test_apply_grads_length_mismatch(self):
        optimizer = SGD([Parameter(np.zeros(2))], lr=1.0)
        with pytest.raises(ConfigError):
            optimizer.apply_grads([])

    def test_invalid_hyperparameters(self):
        p = [Parameter(np.zeros(1))]
        with pytest.raises(ConfigError):
            SGD(p, lr=-1.0)
        with pytest.raises(ConfigError):
            SGD(p, lr=0.1, momentum=1.5)
        with pytest.raises(ConfigError):
            Adam(p, betas=(1.2, 0.9))
        with pytest.raises(ConfigError):
            Adam([], lr=0.1)


class TestMetrics:
    def test_accuracy_from_logits(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0

    def test_accuracy_from_predictions(self):
        assert accuracy(np.array([1, 0]), np.array([1, 1])) == 0.5

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ShapeError):
            accuracy(np.empty((0,)), np.empty((0,)))

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 1, 1]), np.array([0, 0, 1]), 2)
        assert np.array_equal(matrix, [[1, 1], [0, 1]])

    def test_macro_f1_perfect(self):
        preds = np.array([0, 1, 2])
        assert macro_f1(preds, preds) == 1.0

    def test_macro_f1_handles_absent_class(self):
        score = macro_f1(np.array([0, 0]), np.array([0, 0]), num_classes=3)
        assert score == 1.0

    def test_predictions_require_2d(self):
        with pytest.raises(ShapeError):
            predictions_from_logits(np.ones(3))
