"""Composite functions: softmax, losses, norms, cosine distances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import (
    Tensor,
    binary_cross_entropy_with_logits,
    cosine_similarity_columns,
    cross_entropy,
    frobenius_norm,
    gradcheck,
    gradient_cosine_distance,
    l21_norm,
    l2_row_norms,
    log_softmax,
    mse_loss,
    nll_loss,
    one_hot,
    softmax,
)

RNG = np.random.default_rng(2)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(RNG.standard_normal((5, 4)))
        assert np.allclose(softmax(x).data.sum(axis=1), 1.0)

    def test_shift_invariance(self):
        x = RNG.standard_normal((3, 4))
        assert np.allclose(softmax(Tensor(x)).data,
                           softmax(Tensor(x + 100.0)).data)

    def test_large_logits_stable(self):
        x = Tensor(np.array([[1000.0, -1000.0]]))
        out = softmax(x).data
        assert np.all(np.isfinite(out))
        assert out[0, 0] == pytest.approx(1.0)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(RNG.standard_normal((4, 6)))
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data))

    def test_softmax_gradcheck(self):
        x = Tensor(RNG.standard_normal((3, 4)), requires_grad=True)
        w = Tensor(RNG.standard_normal((3, 4)))
        from repro.tensor import mul, tensor_sum
        gradcheck(lambda x: tensor_sum(mul(softmax(x), w)), [x])


class TestOneHot:
    def test_one_hot_values(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        assert np.allclose(out, np.eye(3)[[0, 2, 1]])

    def test_out_of_range_rejected(self):
        with pytest.raises(ShapeError):
            one_hot(np.array([3]), 3)

    def test_negative_rejected(self):
        with pytest.raises(ShapeError):
            one_hot(np.array([-1]), 3)

    def test_two_dimensional_rejected(self):
        with pytest.raises(ShapeError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_uniform_prediction_log_c(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss.item() == pytest.approx(np.log(3))

    def test_gradcheck(self):
        logits = Tensor(RNG.standard_normal((5, 3)), requires_grad=True)
        labels = RNG.integers(0, 3, size=5)
        gradcheck(lambda z: cross_entropy(z, labels), [logits])

    def test_weighted_matches_manual(self):
        logits = Tensor(RNG.standard_normal((4, 3)))
        labels = np.array([0, 1, 2, 1])
        weights = np.array([1.0, 0.0, 2.0, 1.0])
        weighted = cross_entropy(logits, labels, weights=weights).item()
        probs = np.exp(log_softmax(logits).data)
        per = -np.log(probs[np.arange(4), labels])
        assert weighted == pytest.approx((per * weights).sum() / weights.sum())

    def test_rejects_1d_logits(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros(3)), np.array([0]))

    def test_nll_consistent_with_cross_entropy(self):
        logits = Tensor(RNG.standard_normal((4, 3)))
        labels = np.array([0, 2, 1, 1])
        assert nll_loss(log_softmax(logits), labels).item() == pytest.approx(
            cross_entropy(logits, labels).item())


class TestBceWithLogits:
    def test_matches_reference(self):
        logits = RNG.standard_normal(10)
        targets = RNG.integers(0, 2, size=10).astype(float)
        loss = binary_cross_entropy_with_logits(Tensor(logits), targets).item()
        probs = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
        assert loss == pytest.approx(expected)

    def test_extreme_logits_stable(self):
        loss = binary_cross_entropy_with_logits(
            Tensor(np.array([1000.0, -1000.0])), np.array([1.0, 0.0]))
        assert loss.item() == pytest.approx(0.0, abs=1e-9)

    def test_gradcheck(self):
        logits = Tensor(RNG.standard_normal(8), requires_grad=True)
        targets = RNG.integers(0, 2, size=8).astype(float)
        gradcheck(lambda z: binary_cross_entropy_with_logits(z, targets), [logits])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            binary_cross_entropy_with_logits(Tensor(np.zeros(3)), np.zeros(4))


class TestNorms:
    def test_l2_row_norms(self):
        x = Tensor(np.array([[3.0, 4.0], [0.0, 0.0]]))
        norms = l2_row_norms(x, eps=0.0).data
        assert norms[0] == pytest.approx(5.0)
        assert norms[1] == pytest.approx(0.0)

    def test_l21_is_sum_of_row_norms(self):
        x = RNG.standard_normal((6, 3))
        expected = np.linalg.norm(x, axis=1).sum()
        assert l21_norm(Tensor(x)).item() == pytest.approx(expected, rel=1e-6)

    def test_l21_gradcheck(self):
        x = Tensor(RNG.standard_normal((4, 3)), requires_grad=True)
        gradcheck(lambda x: l21_norm(x, eps=1e-10), [x], atol=1e-4)

    def test_l2_rows_rejects_1d(self):
        with pytest.raises(ShapeError):
            l2_row_norms(Tensor(np.zeros(3)))

    def test_frobenius(self):
        x = RNG.standard_normal((3, 3))
        assert frobenius_norm(Tensor(x)).item() == pytest.approx(
            np.linalg.norm(x), rel=1e-6)

    def test_mse(self):
        a, b = RNG.standard_normal((3, 3)), RNG.standard_normal((3, 3))
        assert mse_loss(Tensor(a), b).item() == pytest.approx(((a - b) ** 2).mean())


class TestCosine:
    def test_identical_columns_give_one(self):
        x = Tensor(RNG.standard_normal((5, 3)))
        sims = cosine_similarity_columns(x, x).data
        assert np.allclose(sims, 1.0, atol=1e-6)

    def test_opposite_columns_give_minus_one(self):
        x = Tensor(RNG.standard_normal((5, 3)))
        sims = cosine_similarity_columns(x, Tensor(-x.data)).data
        assert np.allclose(sims, -1.0, atol=1e-6)

    def test_orthogonal_columns_near_zero(self):
        a = Tensor(np.array([[1.0], [0.0]]))
        b = Tensor(np.array([[0.0], [1.0]]))
        assert cosine_similarity_columns(a, b).data[0] == pytest.approx(0.0, abs=1e-4)

    def test_1d_inputs_treated_as_single_column(self):
        a = Tensor(np.array([1.0, 0.0]))
        assert cosine_similarity_columns(a, a).shape == (1,)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            cosine_similarity_columns(Tensor(np.ones((2, 2))),
                                      Tensor(np.ones((3, 2))))

    def test_gradient_distance_zero_for_identical(self):
        g = [Tensor(RNG.standard_normal((4, 3)))]
        assert gradient_cosine_distance(g, g).item() == pytest.approx(0.0, abs=1e-5)

    def test_gradient_distance_positive_and_bounded(self):
        a = [Tensor(RNG.standard_normal((4, 3)))]
        b = [Tensor(RNG.standard_normal((4, 3)))]
        value = gradient_cosine_distance(a, b).item()
        assert 0.0 <= value <= 2.0 * 3  # (1 - cos) in [0, 2] per column

    def test_gradient_distance_mismatched_lists(self):
        with pytest.raises(ShapeError):
            gradient_cosine_distance([Tensor(np.ones(2))], [])

    def test_gradient_distance_differentiable(self):
        a = Tensor(RNG.standard_normal((4, 3)), requires_grad=True)
        target = [Tensor(RNG.standard_normal((4, 3)))]
        gradcheck(lambda a: gradient_cosine_distance([a], target), [a])
