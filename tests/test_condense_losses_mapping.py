"""MCond's four loss terms and the mapping matrix (Eq. 5, 8, 10, 12, 14, 15)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import CondensationError
from repro.condense import (
    MappingMatrix,
    class_aware_logits,
    class_block_mass,
    gradient_matching_loss,
    inductive_loss,
    sparsify_matrix,
    structure_loss,
    transductive_loss,
)
from repro.graph.sampling import EdgeBatch
from repro.tensor import Tensor, grad

RNG = np.random.default_rng(5)


class TestGradientMatchingLoss:
    def test_zero_for_identical(self):
        grads = [Tensor(RNG.standard_normal((3, 2)))]
        assert gradient_matching_loss(grads, grads).item() == pytest.approx(
            0.0, abs=1e-6)

    def test_positive_for_different(self):
        a = [Tensor(RNG.standard_normal((3, 2)))]
        b = [Tensor(RNG.standard_normal((3, 2)))]
        assert gradient_matching_loss(a, b).item() > 0

    def test_original_side_detached(self):
        a = Tensor(RNG.standard_normal((3, 2)), requires_grad=True)
        b = Tensor(RNG.standard_normal((3, 2)), requires_grad=True)
        loss = gradient_matching_loss([a], [b])
        grads = grad(loss, [a, b], allow_unused=True)
        assert grads[0] is None       # detached
        assert grads[1] is not None   # synthetic side differentiable


class TestStructureLoss:
    def test_low_when_embeddings_predict_edges(self):
        # Two clusters; edges only within clusters.
        h = Tensor(np.array([[5.0, 0], [5.0, 0], [0, 5.0], [0, 5.0]]))
        good = EdgeBatch(rows=np.array([0, 2]), cols=np.array([1, 3]),
                         targets=np.array([1.0, 1.0]))
        bad = EdgeBatch(rows=np.array([0, 1]), cols=np.array([2, 3]),
                        targets=np.array([1.0, 1.0]))
        assert structure_loss(h, good).item() < structure_loss(h, bad).item()

    def test_empty_batch_rejected(self):
        empty = EdgeBatch(rows=np.array([], dtype=int),
                          cols=np.array([], dtype=int), targets=np.array([]))
        with pytest.raises(CondensationError):
            structure_loss(Tensor(np.ones((2, 2))), empty)

    def test_differentiable_through_reconstruction(self):
        mapping = Tensor(RNG.random((4, 2)), requires_grad=True)
        h_syn = Tensor(RNG.standard_normal((2, 3)))
        batch = EdgeBatch(rows=np.array([0, 1]), cols=np.array([2, 3]),
                          targets=np.array([1.0, 0.0]))
        loss = structure_loss(mapping @ h_syn, batch)
        (g,) = grad(loss, [mapping])
        assert g.shape == mapping.shape


class TestTransductiveInductiveLosses:
    def test_transductive_zero_for_exact_reconstruction(self):
        h_syn = RNG.standard_normal((3, 4))
        mapping = RNG.random((6, 3))
        h = mapping @ h_syn
        loss = transductive_loss(h, h_syn, Tensor(mapping))
        assert loss.item() == pytest.approx(0.0, abs=1e-4)

    def test_transductive_scales_inverse_n(self):
        h = RNG.standard_normal((10, 4))
        h_syn = RNG.standard_normal((3, 4))
        mapping = np.zeros((10, 3))
        full = transductive_loss(h, h_syn, Tensor(mapping)).item()
        manual = np.linalg.norm(h, axis=1).sum() / 10
        assert full == pytest.approx(manual, rel=1e-5)

    def test_transductive_shape_check(self):
        with pytest.raises(CondensationError):
            transductive_loss(np.ones((4, 2)), np.ones((3, 2)),
                              Tensor(np.ones((5, 3))))

    def test_transductive_differentiable_in_mapping_only(self):
        h = Tensor(RNG.standard_normal((5, 3)), requires_grad=True)
        h_syn = Tensor(RNG.standard_normal((2, 3)), requires_grad=True)
        mapping = Tensor(RNG.random((5, 2)), requires_grad=True)
        loss = transductive_loss(h, h_syn, mapping)
        grads = grad(loss, [h, h_syn, mapping], allow_unused=True)
        assert grads[0] is None and grads[1] is None
        assert grads[2] is not None

    def test_inductive_zero_for_identical(self):
        h = RNG.standard_normal((4, 3))
        assert inductive_loss(h, Tensor(h)).item() == pytest.approx(0.0, abs=1e-4)

    def test_inductive_shape_check(self):
        with pytest.raises(CondensationError):
            inductive_loss(np.ones((3, 2)), Tensor(np.ones((4, 2))))


class TestClassAwareInit:
    def test_block_structure(self):
        logits = class_aware_logits(np.array([0, 0, 1]), np.array([0, 1]),
                                    noise=0.0)
        assert logits[0, 0] > logits[0, 1]
        assert logits[2, 1] > logits[2, 0]

    def test_normalized_mass_concentrates_on_class(self):
        original = np.repeat(np.arange(5), 20)
        synthetic = np.repeat(np.arange(5), 3)
        mapping = MappingMatrix.class_aware(original, synthetic, seed=0)
        normalized = mapping.normalized_array()
        mass = class_block_mass(normalized, original, synthetic, 5)
        diag_share = np.diag(mass).sum() / mass.sum()
        assert diag_share > 0.7

    def test_many_classes_still_concentrated(self):
        original = np.repeat(np.arange(40), 5)
        synthetic = np.repeat(np.arange(40), 2)
        mapping = MappingMatrix.class_aware(original, synthetic, seed=0)
        normalized = mapping.normalized_array()
        first_class_mass = normalized[0][synthetic == original[0]].sum()
        assert first_class_mass / normalized[0].sum() > 0.85


class TestMappingMatrix:
    def make(self, n=8, k=3, seed=0):
        return MappingMatrix.random(n, k, seed=seed)

    def test_normalized_rows_near_one(self):
        mapping = self.make()
        rows = mapping.normalized_array().sum(axis=1)
        assert np.all(rows <= 1.0 + 1e-9)
        assert np.all(rows > 0.9)  # epsilon only trims a little

    def test_normalized_nonnegative(self):
        mapping = self.make()
        assert (mapping.normalized_array() >= 0).all()

    def test_normalized_tensor_matches_array(self):
        mapping = self.make()
        tensor_version = mapping.normalized().data
        assert np.allclose(tensor_version, mapping.normalized_array())

    def test_epsilon_suppresses_small_entries(self):
        big_eps = MappingMatrix(np.zeros((2, 10)), epsilon=0.2)
        assert big_eps.normalized_array().sum() == 0.0  # uniform 0.1 < 0.2

    def test_normalized_differentiable(self):
        mapping = self.make()
        from repro.tensor import tensor_sum
        out = tensor_sum(mapping.normalized())
        (g,) = grad(out, [mapping.raw])
        assert g.shape == mapping.raw.shape

    def test_sparsify_threshold(self):
        matrix = np.array([[0.5, 0.001], [0.2, 0.0]])
        sparse = sparsify_matrix(matrix, 0.1)
        assert sparse.nnz == 2

    def test_sparsify_negative_threshold_rejected(self):
        with pytest.raises(CondensationError):
            sparsify_matrix(np.eye(2), -0.1)

    def test_sparsity_monotone_in_delta(self):
        mapping = self.make(n=20, k=5)
        values = [mapping.sparsity(d) for d in (0.0, 0.05, 0.1, 0.3)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_invalid_shapes_rejected(self):
        with pytest.raises(CondensationError):
            MappingMatrix(np.zeros(5))
        with pytest.raises(CondensationError):
            MappingMatrix(np.zeros((2, 2)), epsilon=-1.0)

    def test_raw_is_trainable_parameter(self):
        mapping = self.make()
        assert mapping.raw.requires_grad
        assert len(mapping.parameters()) == 1


@settings(max_examples=20, deadline=None)
@given(hnp.arrays(np.float64, (4, 3),
                  elements=st.floats(-5, 5, allow_nan=False)))
def test_normalization_row_bound_property(logits):
    mapping = MappingMatrix(logits, epsilon=1e-5)
    normalized = mapping.normalized_array()
    assert (normalized >= 0).all()
    assert (normalized.sum(axis=1) <= 1.0 + 1e-9).all()


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=0.0, max_value=0.5))
def test_sparsify_never_increases_values(threshold):
    matrix = np.abs(RNG.standard_normal((5, 5)))
    sparse = sparsify_matrix(matrix, threshold).toarray()
    assert (sparse <= matrix + 1e-12).all()
    kept = sparse > 0
    assert np.allclose(sparse[kept], matrix[kept])
