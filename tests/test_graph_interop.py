"""NetworkX round-trip conversion."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.interop import from_networkx, to_networkx


class TestRoundTrip:
    def test_graph_to_networkx_and_back(self, path_graph):
        nx_graph = to_networkx(path_graph)
        assert nx_graph.number_of_nodes() == path_graph.num_nodes
        assert nx_graph.number_of_edges() == path_graph.num_undirected_edges
        back = from_networkx(nx_graph)
        assert back == path_graph

    def test_labels_preserved(self, path_graph):
        back = from_networkx(to_networkx(path_graph))
        assert np.array_equal(back.labels, path_graph.labels)

    def test_weights_preserved(self):
        g = nx.Graph()
        g.add_node(0, x=[1.0]); g.add_node(1, x=[2.0])
        g.add_edge(0, 1, weight=2.5)
        converted = from_networkx(g)
        assert converted.adjacency[0, 1] == 2.5
        assert converted.adjacency[1, 0] == 2.5

    def test_unlabeled_graph(self):
        g = nx.Graph()
        g.add_node("a", x=[0.0, 1.0])
        g.add_node("b", x=[1.0, 0.0])
        g.add_edge("a", "b")
        converted = from_networkx(g)
        assert converted.labels is None
        assert converted.num_nodes == 2

    def test_arbitrary_node_names_reindexed(self):
        g = nx.Graph()
        g.add_node("x", x=[1.0], y=0)
        g.add_node(99, x=[2.0], y=1)
        g.add_edge("x", 99)
        converted = from_networkx(g)
        assert converted.num_nodes == 2
        assert converted.adjacency[0, 1] == 1.0


class TestValidation:
    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(nx.Graph())

    def test_missing_features_rejected(self):
        g = nx.Graph()
        g.add_node(0)
        with pytest.raises(GraphError):
            from_networkx(g)

    def test_partial_labels_rejected(self):
        g = nx.Graph()
        g.add_node(0, x=[1.0], y=0)
        g.add_node(1, x=[2.0])
        with pytest.raises(GraphError):
            from_networkx(g)
