"""Streaming deployment: apply_delta parity, runtime ingest, benchmark."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ServingError
from repro.graph.datasets import IncrementalBatch
from repro.graph.stream import GraphDelta, StreamingGraph, make_delta_trace
from repro.nn import make_model
from repro.serving import PreparedDeployment, ServingRuntime
from repro.serving.stream_bench import (
    check_streaming_benchmark_schema,
    gate_streaming_benchmark,
)


@pytest.fixture()
def sgc(tiny_split):
    return make_model("sgc", tiny_split.original.feature_dim,
                      tiny_split.num_classes, seed=0)


def _random_delta(stream: StreamingGraph, batch, cursor: int, rng,
                  *, append: bool = True):
    """One random-but-valid delta against the stream's current state."""
    n = stream.num_nodes
    add_edges = rng.integers(0, n, size=(3, 2))
    add_edges = add_edges[add_edges[:, 0] != add_edges[:, 1]]
    rows, vals = [add_edges], [np.ones(add_edges.shape[0])]
    add_features = add_labels = None
    if append:
        sel = np.arange(cursor, cursor + 2)
        add_features = batch.features[sel]
        add_labels = batch.labels[sel]
        inc = batch.incremental[sel].tocoo()
        rows.append(np.column_stack([inc.row + n, inc.col]))
        vals.append(inc.data)
    upper = sp.triu(stream.graph.adjacency, k=1).tocoo()
    picks = rng.choice(upper.nnz, size=2, replace=False)
    remove = np.column_stack([upper.row[picks], upper.col[picks]])
    added = np.vstack(rows)
    lo = np.minimum(added[:, 0], added[:, 1])
    hi = np.maximum(added[:, 0], added[:, 1])
    keys = (np.minimum(remove[:, 0], remove[:, 1]) * (n + 2)
            + np.maximum(remove[:, 0], remove[:, 1]))
    keep = ~np.isin(lo * (n + 2) + hi, keys)
    update_index = np.sort(rng.choice(n, size=3, replace=False))
    return GraphDelta(
        add_features=add_features, add_labels=add_labels,
        add_edges=added[keep],
        add_weights=np.concatenate(vals)[keep],
        remove_edges=remove,
        update_index=update_index,
        update_features=stream.graph.features[update_index]
        + rng.standard_normal((3, batch.features.shape[1])) * 0.1)


def _assert_prepared_parity(evolved: PreparedDeployment,
                            fresh: PreparedDeployment,
                            batch, batch_mode: str):
    assert evolved.num_base == fresh.num_base
    assert np.array_equal(evolved.base_loops.data, fresh.base_loops.data)
    assert np.array_equal(evolved.base_loops.indices,
                          fresh.base_loops.indices)
    assert np.array_equal(evolved.base_loops.indptr, fresh.base_loops.indptr)
    assert np.array_equal(evolved.base_features, fresh.base_features)
    assert evolved._raw_nnz == fresh._raw_nnz
    op_a, op_b = evolved.base_operator(), fresh.base_operator()
    assert np.array_equal(op_a.data, op_b.data)
    assert np.array_equal(op_a.indices, op_b.indices)
    for hop_a, hop_b in zip(evolved.propagated_base_features(),
                            fresh.propagated_base_features()):
        assert np.array_equal(hop_a, hop_b)
    assert np.array_equal(evolved.warm_base(), fresh.warm_base())
    assert np.array_equal(evolved._standalone_inv_sqrt_degrees(),
                          fresh._standalone_inv_sqrt_degrees())
    inc = batch.incremental.tocsr()
    probe = IncrementalBatch(
        features=batch.features,
        incremental=sp.csr_matrix((inc.data, inc.indices, inc.indptr),
                                  shape=(inc.shape[0], evolved.num_base)),
        intra=batch.intra, labels=batch.labels)
    logits_a, _, memory_a = evolved.serve_batch(probe, batch_mode)
    logits_b, _, memory_b = fresh.serve_batch(probe, batch_mode)
    assert np.array_equal(logits_a, logits_b)
    assert memory_a == memory_b
    frozen_a, _, _ = evolved.serve_batch_frozen(probe, batch_mode)
    frozen_b, _, _ = fresh.serve_batch_frozen(probe, batch_mode)
    assert np.array_equal(frozen_a, frozen_b)


class TestApplyDeltaParity:
    """Property suite: random delta sequences vs from-scratch prepare()."""

    @pytest.mark.parametrize("batch_mode", ("graph", "node"))
    @pytest.mark.parametrize("seed", (0, 1))
    def test_random_sequence_bitwise_parity(self, tiny_split, sgc,
                                            batch_mode, seed):
        rng = np.random.default_rng(seed)
        batch = tiny_split.incremental_batch("test")
        prepared = PreparedDeployment(sgc, "original", tiny_split.original)
        prepared.base_operator()
        prepared.propagated_base_features()
        prepared.warm_base()
        reference = StreamingGraph(tiny_split.original.copy())
        probe = batch.subset(np.arange(20, 24))
        cursor = 0
        for step in range(5):
            delta = _random_delta(reference, batch, cursor, rng,
                                  append=step % 2 == 0)
            cursor += delta.num_new_nodes
            report = prepared.apply_delta(delta)
            assert report.mode in ("incremental", "rebuild")
            reference.apply(delta)
            fresh = PreparedDeployment(sgc, "original", reference.graph)
            _assert_prepared_parity(prepared, fresh, probe, batch_mode)

    def test_forced_rebuild_matches_incremental(self, tiny_split, sgc):
        batch = tiny_split.incremental_batch("test")
        trace = make_delta_trace(tiny_split.original, batch, num_deltas=4,
                                 nodes_per_delta=2, edges_per_delta=3,
                                 removals_per_delta=1, updates_per_delta=2,
                                 seed=9)
        incremental = PreparedDeployment(sgc, "original",
                                         tiny_split.original)
        rebuild = PreparedDeployment(sgc, "original", tiny_split.original)
        for prepared in (incremental, rebuild):
            prepared.base_operator()
            prepared.propagated_base_features()
        for delta in trace:
            inc_report = incremental.apply_delta(delta)
            reb_report = rebuild.apply_delta(delta, staleness_threshold=0.0)
            assert reb_report.mode == "rebuild"
            assert inc_report.num_base == reb_report.num_base
        assert np.array_equal(incremental.base_operator().data,
                              rebuild.base_operator().data)
        for hop_a, hop_b in zip(incremental.propagated_base_features(),
                                rebuild.propagated_base_features()):
            assert np.array_equal(hop_a, hop_b)

    def test_zero_delta_is_noop(self, tiny_split, sgc):
        prepared = PreparedDeployment(sgc, "original", tiny_split.original)
        operator_before = prepared.base_operator()
        report = prepared.apply_delta(GraphDelta())
        assert report.mode == "noop"
        assert report.appended == 0
        assert prepared.base_operator() is operator_before

    def test_lazy_caches_stay_lazy(self, tiny_split, sgc):
        """A delta on a cold deployment must not materialize warm caches."""
        prepared = PreparedDeployment(sgc, "original", tiny_split.original)
        report = prepared.apply_delta(GraphDelta(add_edges=[[0, 5]]))
        assert report.mode == "incremental"
        assert report.refreshed == ()
        assert prepared._base_operator is None
        assert prepared._propagated is None

    def test_invalid_threshold_rejected(self, tiny_split, sgc):
        prepared = PreparedDeployment(sgc, "original", tiny_split.original)
        with pytest.raises(ServingError, match="staleness"):
            prepared.apply_delta(GraphDelta(), staleness_threshold=1.5)
        with pytest.raises(ServingError, match="GraphDelta"):
            prepared.apply_delta("not a delta")

    def test_synthetic_append_extends_mapping(self, tiny_split, sgc,
                                              tiny_condensed):
        prepared = PreparedDeployment(sgc, "synthetic", None, tiny_condensed)
        batch = tiny_split.incremental_batch("test")
        rows_before = prepared.mapping.shape[0]
        report = prepared.apply_delta(
            GraphDelta(add_features=batch.features[:3]))
        assert report.mode == "append-mapping"
        assert prepared.mapping.shape[0] == rows_before + 3
        # a request citing a streamed node id attaches (with zero mass)
        inc = sp.csr_matrix(
            (np.ones(2), ([0, 0], [1, rows_before + 1])),
            shape=(1, rows_before + 3))
        request = IncrementalBatch(features=batch.features[:1],
                                   incremental=inc,
                                   intra=sp.csr_matrix((1, 1)),
                                   labels=batch.labels[:1])
        logits, _, _ = prepared.serve_batch(request, "node")
        assert logits.shape[0] == 1

    def test_synthetic_edge_delta_rejected(self, sgc, tiny_condensed):
        prepared = PreparedDeployment(sgc, "synthetic", None, tiny_condensed)
        with pytest.raises(ServingError, match="recondensation"):
            prepared.apply_delta(GraphDelta(add_edges=[[0, 1]]))


class TestRuntimeIngest:
    def test_ingest_interleaves_with_serving(self, tiny_split, sgc):
        prepared = PreparedDeployment(sgc, "original", tiny_split.original)
        runtime = ServingRuntime(prepared, "immediate", batch_mode="node")
        batch = tiny_split.incremental_batch("test")
        trace = make_delta_trace(tiny_split.original, batch, num_deltas=2,
                                 nodes_per_delta=2, edges_per_delta=2,
                                 seed=3)
        futures, ingests = [], []
        for i in range(4):
            futures.append(runtime.submit_batch(
                batch.subset(np.array([10 + i]))))
            if i % 2 == 0:
                ingests.append(runtime.ingest(trace[i // 2]))
            runtime.run_pending()
        for future in futures:
            assert future.result(timeout=5.0).shape[0] == 1
        for ingest in ingests:
            assert ingest.result(timeout=5.0).appended == 2
        stats = runtime.stream_stats()
        assert stats["deltas"] == 2
        assert stats["appended_nodes"] == 4
        assert runtime.prepared.num_base == tiny_split.original.num_nodes + 4

    def test_stale_width_requests_still_serve(self, tiny_split, sgc):
        """Requests admitted before an append serve after it lands."""
        prepared = PreparedDeployment(sgc, "original", tiny_split.original)
        runtime = ServingRuntime(prepared, "immediate", batch_mode="node")
        batch = tiny_split.incremental_batch("test")
        future = runtime.submit_batch(batch.subset(np.array([0])))
        runtime.ingest(GraphDelta(add_features=batch.features[1:3],
                                  add_labels=batch.labels[1:3]))
        runtime.run_pending()  # delta applies first, then the request
        assert future.result(timeout=5.0).shape[0] == 1
        assert runtime.prepared.num_base == tiny_split.original.num_nodes + 2

    def test_mixed_width_batch_serves(self, tiny_split, sgc):
        """Regression: one micro-batch coalescing a pre-append request
        with a post-append request must widen per request, not crash
        merge_requests for the whole batch."""
        n = tiny_split.original.num_nodes
        prepared = PreparedDeployment(sgc, "original", tiny_split.original)
        runtime = ServingRuntime(prepared, "sizecap", batch_mode="node",
                                 scheduler_options={"max_batch_size": 4})
        batch = tiny_split.incremental_batch("test")
        old_width = batch.subset(np.array([0]))
        future_a = runtime.submit_batch(old_width)  # admitted at width n
        runtime.ingest(GraphDelta(add_features=batch.features[1:3],
                                  add_labels=batch.labels[1:3]))
        with runtime._serve_lock:
            runtime._apply_pending_deltas()  # base is now n + 2 wide
        wide_inc = sp.csr_matrix(
            (np.ones(1), ([0], [n + 1])), shape=(1, n + 2))
        future_b = runtime.submit(batch.features[3], wide_inc)
        served = runtime.step()
        assert served == 2  # both coalesced into one batch
        assert future_a.result(timeout=5.0).shape[0] == 1
        assert future_b.result(timeout=5.0).shape[0] == 1

    def test_request_citing_pending_delta_ids_admitted(self, tiny_split,
                                                       sgc):
        """Regression: ingest-then-submit (the documented pattern) must
        admit a request citing the just-ingested nodes even before the
        serving loop has applied the delta."""
        n = tiny_split.original.num_nodes
        prepared = PreparedDeployment(sgc, "original", tiny_split.original)
        runtime = ServingRuntime(prepared, "immediate", batch_mode="node")
        batch = tiny_split.incremental_batch("test")
        runtime.ingest(GraphDelta(add_features=batch.features[:2],
                                  add_labels=batch.labels[:2]))
        inc = sp.csr_matrix((np.ones(1), ([0], [n])), shape=(1, n + 2))
        future = runtime.submit(batch.features[2], inc)  # cites appended id
        runtime.run_pending()
        assert future.result(timeout=5.0).shape[0] == 1
        assert runtime.prepared.num_base == n + 2
        # beyond the promised width is still malformed
        too_wide = sp.csr_matrix((1, n + 50))
        with pytest.raises(ServingError, match="incremental adjacency"):
            runtime.submit(batch.features[2], too_wide)

    def test_ingest_rejects_non_delta_and_closed_runtime(self, tiny_split,
                                                         sgc):
        prepared = PreparedDeployment(sgc, "original", tiny_split.original)
        runtime = ServingRuntime(prepared, "immediate")
        with pytest.raises(ServingError, match="GraphDelta"):
            runtime.ingest("nope")
        runtime.stop()
        with pytest.raises(ServingError, match="stopped"):
            runtime.ingest(GraphDelta())

    def test_never_streamed_runtime_keeps_strict_widths(self, tiny_split,
                                                        sgc):
        """Regression: stale-width tolerance must not weaken validation on
        a frozen runtime — a too-narrow incremental is malformed there."""
        n = tiny_split.original.num_nodes
        prepared = PreparedDeployment(sgc, "original", tiny_split.original)
        runtime = ServingRuntime(prepared, "immediate", batch_mode="node")
        batch = tiny_split.incremental_batch("test")
        with pytest.raises(ServingError, match="incremental adjacency"):
            runtime.submit(batch.features[0], sp.csr_matrix((1, n - 5)))

    def test_width_floor_is_opening_width(self, tiny_split, sgc):
        """After appends, valid widths span [opening, current] — never
        below what the runtime opened with."""
        n = tiny_split.original.num_nodes
        prepared = PreparedDeployment(sgc, "original", tiny_split.original)
        runtime = ServingRuntime(prepared, "immediate", batch_mode="node")
        batch = tiny_split.incremental_batch("test")
        runtime.ingest(GraphDelta(add_features=batch.features[:2],
                                  add_labels=batch.labels[:2]))
        runtime.run_pending()
        ok = runtime.submit(batch.features[0], sp.csr_matrix((1, n)))
        runtime.run_pending()
        assert ok.result(timeout=5.0).shape[0] == 1
        with pytest.raises(ServingError, match="incremental adjacency"):
            runtime.submit(batch.features[0], sp.csr_matrix((1, n - 1)))

    def test_stop_without_drain_fails_pending_ingest(self, tiny_split, sgc):
        """Regression: stop(drain=False) must resolve pending delta
        futures (with an error) instead of leaving waiters hanging."""
        prepared = PreparedDeployment(sgc, "original", tiny_split.original)
        runtime = ServingRuntime(prepared, "immediate")
        batch = tiny_split.incremental_batch("test")
        future = runtime.ingest(GraphDelta(add_features=batch.features[:1],
                                           add_labels=batch.labels[:1]))
        runtime.stop(drain=False)
        assert future.done()
        with pytest.raises(ServingError, match="stopped before"):
            future.result(timeout=1.0)

    def test_failed_delta_fails_future_not_runtime(self, tiny_split, sgc):
        prepared = PreparedDeployment(sgc, "original", tiny_split.original)
        runtime = ServingRuntime(prepared, "immediate", batch_mode="node")
        bad = GraphDelta(remove_edges=[[0, 1], [0, 2]])
        # make sure at least one of those edges does not exist
        adj = tiny_split.original.adjacency
        assert adj[0, 1] == 0 or adj[0, 2] == 0
        future = runtime.ingest(bad)
        runtime.step()
        with pytest.raises(Exception):
            future.result(timeout=5.0)
        batch = tiny_split.incremental_batch("test")
        ok = runtime.submit_batch(batch.subset(np.array([0])))
        runtime.run_pending()
        assert ok.result(timeout=5.0).shape[0] == 1

    def test_failed_promised_width_fails_only_that_request(self, tiny_split,
                                                           sgc):
        """Regression: a request citing the width promised by a delta that
        then fails to apply must fail alone — not poison the whole
        micro-batch with a merge-shape error."""
        n = tiny_split.original.num_nodes
        prepared = PreparedDeployment(sgc, "original", tiny_split.original)
        runtime = ServingRuntime(prepared, "sizecap", batch_mode="node",
                                 scheduler_options={"max_batch_size": 2})
        batch = tiny_split.incremental_batch("test")
        adj = tiny_split.original.adjacency
        assert adj[0, 1] == 0 or adj[0, 2] == 0  # the delta must fail
        bad = GraphDelta(add_features=batch.features[:2],
                         add_labels=batch.labels[:2],
                         remove_edges=[[0, 1], [0, 2]])
        delta_future = runtime.ingest(bad)
        wide = sp.csr_matrix((np.ones(1), ([0], [n])), shape=(1, n + 2))
        poisoned = runtime.submit(batch.features[2], wide)
        ok = runtime.submit_batch(batch.subset(np.array([3])))
        runtime.run_pending()
        with pytest.raises(Exception):
            delta_future.result(timeout=5.0)
        with pytest.raises(ServingError, match="failed to apply"):
            poisoned.result(timeout=5.0)
        assert ok.result(timeout=5.0).shape[0] == 1

    def test_open_stream_warms_caches(self):
        from repro import api
        bundle = api.deploy("tiny-sim", "whole", 0, deployment="original",
                            profile="quick", seed=7)
        runtime = api.open_stream(bundle, staleness_threshold=0.4)
        assert runtime.staleness_threshold == 0.4
        assert runtime.prepared._base_operator is not None
        assert runtime.prepared._propagated is not None


class TestStreamingBenchmarkSchema:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.serving.stream_bench import run_streaming_benchmark
        return run_streaming_benchmark(
            "tiny-sim", method="whole", seed=7, profile="quick",
            num_deltas=3, nodes_per_delta=2, edges_per_delta=2,
            removals_per_delta=1, updates_per_delta=1, num_requests=8,
            nodes_per_request=1, ingest_every=2)

    def test_schema_passes(self, result):
        check_streaming_benchmark_schema(result)

    def test_parity_is_bitwise(self, result):
        assert result["parity"]["bit_identical"] is True

    def test_refresh_sections_populated(self, result):
        assert result["refresh"]["delta_refresh"]["ms_mean"] > 0
        assert result["refresh"]["full_rebuild"]["ms_mean"] > 0
        assert result["refresh"]["full_rebuild"]["modes"]["rebuild"] == 3

    def test_serving_sections_populated(self, result):
        assert result["serving"]["with_ingest"]["requests"] == 8
        assert result["serving"]["stream"]["deltas"] == 3

    def test_gate_catches_broken_parity(self, result):
        broken = {**result, "parity": {"bit_identical": False}}
        assert any("parity" in failure
                   for failure in gate_streaming_benchmark(broken))

    def test_gate_catches_slow_refresh(self, result):
        slow = {**result,
                "refresh": {**result["refresh"], "speedup": 0.5}}
        assert any("not faster" in failure
                   for failure in gate_streaming_benchmark(slow))

    def test_schema_rejects_missing_section(self, result):
        broken = dict(result)
        broken.pop("refresh")
        with pytest.raises(ServingError, match="refresh"):
            check_streaming_benchmark_schema(broken)
