"""Condensed-graph container, class allocation, coresets, VNG."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import CondensationError
from repro.condense import (
    CondensedGraph,
    VngReducer,
    allocate_class_counts,
    make_coreset,
    selection_mapping,
    sgc_embeddings,
    weighted_kmeans,
)

CORESETS = ("random", "degree", "herding", "kcenter")


class TestCondensedGraph:
    def test_validation_square(self):
        with pytest.raises(CondensationError):
            CondensedGraph(np.ones((2, 3)), np.ones((2, 2)), np.zeros(2, dtype=int))

    def test_validation_row_counts(self):
        with pytest.raises(CondensationError):
            CondensedGraph(np.eye(2), np.ones((3, 2)), np.zeros(2, dtype=int))

    def test_mapping_column_check(self):
        with pytest.raises(CondensationError):
            CondensedGraph(np.eye(2), np.ones((2, 2)), np.zeros(2, dtype=int),
                           mapping=sp.csr_matrix(np.ones((5, 3))))

    def test_to_graph_roundtrip(self, tiny_condensed):
        graph = tiny_condensed.to_graph()
        assert graph.num_nodes == tiny_condensed.num_nodes
        assert np.allclose(graph.features, tiny_condensed.features)

    def test_normalized_adjacency_symmetric(self, tiny_condensed):
        norm = tiny_condensed.normalized_adjacency()
        assert np.allclose(norm, norm.T)

    def test_storage_accounting_includes_mapping(self, tiny_condensed):
        with_mapping = tiny_condensed.storage_bytes(include_mapping=True)
        without = tiny_condensed.storage_bytes(include_mapping=False)
        assert with_mapping > without

    def test_supports_attachment(self, tiny_condensed):
        assert tiny_condensed.supports_attachment()
        no_map = CondensedGraph(np.eye(2), np.ones((2, 2)),
                                np.zeros(2, dtype=int))
        assert not no_map.supports_attachment()


class TestAllocation:
    def test_proportional_allocation(self):
        labels = np.array([0] * 60 + [1] * 30 + [2] * 10)
        counts = allocate_class_counts(labels, 10, 3)
        assert counts.sum() == 10
        assert counts[0] >= counts[1] >= counts[2] >= 1

    def test_minimum_one_per_class(self):
        labels = np.array([0] * 98 + [1] * 1 + [2] * 1)
        counts = allocate_class_counts(labels, 5, 3)
        assert (counts[counts > 0] >= 1).all()
        assert counts.sum() == 5

    def test_budget_below_class_count_rejected(self):
        with pytest.raises(CondensationError):
            allocate_class_counts(np.array([0, 1, 2]), 2, 3)

    def test_absent_class_gets_zero(self):
        counts = allocate_class_counts(np.array([0, 0, 2]), 4, 3)
        assert counts[1] == 0

    def test_selection_mapping_one_hot(self):
        mapping = selection_mapping(np.array([3, 1]), 5)
        dense = mapping.toarray()
        assert dense.shape == (5, 2)
        assert dense[3, 0] == 1.0 and dense[1, 1] == 1.0
        assert dense.sum() == 2.0


class TestCoresets:
    @pytest.mark.parametrize("name", CORESETS)
    def test_budget_respected(self, name, tiny_split):
        condensed = make_coreset(name, seed=0).reduce(tiny_split, 9)
        assert condensed.num_nodes == 9
        assert condensed.method == name

    @pytest.mark.parametrize("name", CORESETS)
    def test_class_coverage(self, name, tiny_split):
        condensed = make_coreset(name, seed=0).reduce(tiny_split, 9)
        assert np.unique(condensed.labels).size == tiny_split.num_classes

    @pytest.mark.parametrize("name", CORESETS)
    def test_selected_features_are_real_rows(self, name, tiny_split):
        condensed = make_coreset(name, seed=0).reduce(tiny_split, 9)
        original = tiny_split.original.features
        for row in condensed.features:
            assert (np.abs(original - row).sum(axis=1) < 1e-12).any()

    def test_mapping_is_one_hot_selection(self, tiny_split):
        condensed = make_coreset("random", seed=0).reduce(tiny_split, 9)
        mapping = condensed.mapping.toarray()
        assert mapping.sum() == 9
        assert set(np.unique(mapping)) <= {0.0, 1.0}
        assert (mapping.sum(axis=0) == 1.0).all()

    def test_degree_picks_highest_degree(self, tiny_split):
        condensed = make_coreset("degree", seed=0).reduce(tiny_split, 9)
        graph = tiny_split.original
        chosen_rows = condensed.mapping.tocoo().row
        chosen_degrees = graph.degrees()[chosen_rows]
        assert chosen_degrees.mean() >= graph.degrees().mean()

    def test_random_differs_across_seeds(self, tiny_split):
        a = make_coreset("random", seed=0).reduce(tiny_split, 9)
        b = make_coreset("random", seed=1).reduce(tiny_split, 9)
        assert not np.allclose(a.features, b.features)

    def test_herding_deterministic(self, tiny_split):
        a = make_coreset("herding", seed=0).reduce(tiny_split, 9)
        b = make_coreset("herding", seed=99).reduce(tiny_split, 9)
        assert np.allclose(a.features, b.features)  # herding has no randomness

    def test_unknown_coreset_rejected(self):
        with pytest.raises(CondensationError):
            make_coreset("prototype")

    def test_budget_validation(self, tiny_split):
        with pytest.raises(CondensationError):
            make_coreset("random").reduce(tiny_split, 1)
        with pytest.raises(CondensationError):
            make_coreset("random").reduce(tiny_split, 10 ** 6)

    def test_sgc_embeddings_shape(self, tiny_split):
        emb = sgc_embeddings(tiny_split.original)
        assert emb.shape == tiny_split.original.features.shape


class TestWeightedKmeans:
    def test_returns_k_clusters(self, rng):
        points = rng.standard_normal((50, 3))
        assignment, centroids = weighted_kmeans(points, np.ones(50), 5, rng)
        assert centroids.shape == (5, 3)
        assert np.unique(assignment).size == 5

    def test_weighting_pulls_centroid(self, rng):
        points = np.array([[0.0], [10.0]])
        weights = np.array([100.0, 1.0])
        _, centroids = weighted_kmeans(points, weights, 1, rng, iters=5)
        assert centroids[0, 0] < 1.0

    def test_invalid_k_rejected(self, rng):
        with pytest.raises(CondensationError):
            weighted_kmeans(np.ones((3, 2)), np.ones(3), 0, rng)
        with pytest.raises(CondensationError):
            weighted_kmeans(np.ones((3, 2)), np.ones(3), 4, rng)

    def test_negative_weights_rejected(self, rng):
        with pytest.raises(CondensationError):
            weighted_kmeans(np.ones((3, 2)), np.array([-1.0, 1, 1]), 2, rng)


class TestVng:
    def test_output_structure(self, tiny_split):
        condensed = VngReducer(seed=0).reduce(tiny_split, 9)
        assert condensed.num_nodes == 9
        assert condensed.method == "vng"
        assert condensed.supports_attachment()

    def test_mapping_assigns_every_original_node(self, tiny_split):
        condensed = VngReducer(seed=0).reduce(tiny_split, 9)
        mapping = condensed.mapping
        assert mapping.shape[0] == tiny_split.original.num_nodes
        assert np.allclose(np.asarray(mapping.sum(axis=1)).reshape(-1), 1.0)

    def test_clusters_class_pure(self, tiny_split):
        condensed = VngReducer(seed=0).reduce(tiny_split, 9)
        assignment = condensed.mapping.tocoo()
        original_labels = tiny_split.original.labels[assignment.row]
        virtual_labels = condensed.labels[assignment.col]
        assert (original_labels == virtual_labels).all()

    def test_adjacency_nonnegative_symmetric(self, tiny_split):
        condensed = VngReducer(seed=0).reduce(tiny_split, 9)
        assert (condensed.adjacency >= 0).all()
        assert np.allclose(condensed.adjacency, condensed.adjacency.T)

    def test_deterministic_by_seed(self, tiny_split):
        a = VngReducer(seed=3).reduce(tiny_split, 9)
        b = VngReducer(seed=3).reduce(tiny_split, 9)
        assert np.allclose(a.features, b.features)
        assert np.allclose(a.adjacency, b.adjacency)
