"""Workload generators and the serving-latency benchmark."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import InferenceError, ServingError
from repro.inference import TimingStats, time_callable
from repro.inference.benchmark import latency_percentiles
from repro.registry import WORKLOADS, make_workload
from repro.serving import (
    BurstyWorkload,
    PoissonWorkload,
    RampWorkload,
    check_benchmark_schema,
    gate_serving_benchmark,
    run_serving_benchmark,
    split_requests,
    write_benchmark_json,
)


class TestWorkloads:
    def test_registry_entries(self):
        for name in ("poisson", "bursty", "ramp"):
            assert name in WORKLOADS

    def test_arrivals_deterministic_and_increasing(self):
        workload = PoissonWorkload(rate=100.0)
        first = workload.arrivals(50, 123)
        second = workload.arrivals(50, 123)
        assert np.array_equal(first, second)
        assert (np.diff(first) > 0).all()

    def test_poisson_rate_matches(self):
        workload = PoissonWorkload(rate=200.0)
        arrivals = workload.arrivals(4000, np.random.default_rng(0))
        mean_gap = float(np.diff(arrivals).mean())
        assert mean_gap == pytest.approx(1.0 / 200.0, rel=0.1)

    def test_bursty_phases(self):
        workload = BurstyWorkload(base_rate=10.0, burst_rate=100.0,
                                  period_s=1.0, duty=0.25)
        assert workload.rate_at(0.1) == 100.0
        assert workload.rate_at(0.5) == 10.0
        assert workload.rate_at(1.1) == 100.0

    def test_ramp_endpoints(self):
        workload = RampWorkload(start_rate=10.0, end_rate=110.0,
                                duration_s=2.0)
        assert workload.rate_at(0.0) == 10.0
        assert workload.rate_at(1.0) == pytest.approx(60.0)
        assert workload.rate_at(5.0) == 110.0

    def test_factory_kwargs(self):
        workload = make_workload("bursty", base_rate=5.0, burst_rate=50.0)
        assert isinstance(workload, BurstyWorkload)
        assert workload.base_rate == 5.0

    def test_validation(self):
        with pytest.raises(ServingError):
            PoissonWorkload(rate=0.0)
        with pytest.raises(ServingError):
            BurstyWorkload(duty=1.5)
        with pytest.raises(ServingError):
            RampWorkload(duration_s=0.0)
        with pytest.raises(ServingError):
            PoissonWorkload(rate=5.0).arrivals(-1)


class TestSplitRequests:
    def test_cycles_when_stream_longer_than_batch(self, tiny_split):
        batch = tiny_split.incremental_batch("val")
        stream = split_requests(batch, batch.num_nodes + 3, 1)
        assert len(stream) == batch.num_nodes + 3
        assert np.array_equal(stream[0].features,
                              stream[batch.num_nodes].features)

    def test_request_sizes(self, tiny_split):
        stream = split_requests(tiny_split.incremental_batch("val"), 4, 3)
        assert all(request.num_nodes == 3 for request in stream)

    def test_validation(self, tiny_split):
        batch = tiny_split.incremental_batch("val")
        with pytest.raises(ServingError):
            split_requests(batch, 0)
        with pytest.raises(ServingError):
            split_requests(batch.subset(np.array([], dtype=int)), 4)


class TestPercentileHelpers:
    def test_latency_percentiles_ordered(self):
        tail = latency_percentiles(np.arange(100))
        assert tail["p50"] <= tail["p95"] <= tail["p99"]
        assert set(tail) == {"p50", "p95", "p99"}

    def test_latency_percentiles_empty(self):
        with pytest.raises(InferenceError):
            latency_percentiles([])

    def test_latency_percentiles_empty_value(self):
        tail = latency_percentiles([], empty=float("nan"))
        assert set(tail) == {"p50", "p95", "p99"}
        assert all(np.isnan(v) for v in tail.values())

    def test_latency_percentiles_single_sample(self):
        tail = latency_percentiles([0.25])
        assert tail["p50"] == tail["p95"] == tail["p99"] == 0.25

    def test_timing_stats_expose_percentiles(self):
        stats = time_callable(lambda: sum(range(100)), repeats=7, warmup=0)
        assert stats.p50_seconds is not None
        assert stats.p50_seconds <= stats.p95_seconds <= stats.p99_seconds
        assert stats.p50_seconds == pytest.approx(stats.median_seconds)

    def test_from_samples_matches_shared_helper(self):
        samples = [0.5, 0.1, 0.9, 0.3]
        stats = TimingStats.from_samples(samples)
        tail = latency_percentiles(samples)
        assert stats.p95_seconds == tail["p95"]
        assert stats.repeats == 4


class TestEmptyWindowAccounting:
    """Polling a runtime before its first completed request must be
    NaN-safe — zeros would read as real (excellent) measurements."""

    def test_empty_summary_is_nan_not_zero(self):
        from repro.serving.stats import LatencyAccounting
        stats = LatencyAccounting().summary()
        assert stats.requests == 0
        for value in (stats.latency_p50, stats.latency_p95,
                      stats.latency_p99, stats.latency_mean,
                      stats.queue_wait_mean, stats.compute_mean):
            assert np.isnan(value)
        assert stats.throughput_rps == 0.0

    def test_empty_as_dict_is_json_clean(self):
        import json
        from repro.serving.stats import LatencyAccounting
        payload = LatencyAccounting().summary().as_dict()
        assert payload["latency_p95_ms"] is None
        assert payload["compute_mean_ms"] is None
        json.loads(json.dumps(payload, allow_nan=False))  # strict JSON

    def test_rejections_still_reported_with_nan_latency(self):
        from repro.serving.stats import LatencyAccounting
        accounting = LatencyAccounting()
        accounting.observe_rejection(3)
        stats = accounting.summary()
        assert stats.rejected == 3
        assert np.isnan(stats.latency_p50)

    def test_single_sample_window(self):
        from repro.serving.stats import LatencyAccounting, RequestRecord
        accounting = LatencyAccounting()
        record = RequestRecord(num_nodes=1, queue_seconds=0.01,
                               compute_seconds=0.02, batch_size=1)
        accounting.observe_batch([record], started=1.0, finished=1.05)
        stats = accounting.summary()
        assert stats.requests == 1
        assert stats.latency_p50 == pytest.approx(0.03)
        assert stats.latency_p50 == stats.latency_p99
        assert stats.as_dict()["latency_p95_ms"] == pytest.approx(30.0)


@pytest.fixture(scope="module")
def bench_result():
    # tiny-sim keeps this fast; repeats=4 keeps best-of timing stable
    return run_serving_benchmark(
        "tiny-sim", budget=9, seed=0, profile="quick",
        num_requests=12, nodes_per_request=3, max_batch_size=4, repeats=4)


class TestServingBenchmark:
    def test_schema(self, bench_result):
        check_benchmark_schema(bench_result)  # raises on drift
        assert bench_result["schema_version"] == 2
        assert "synthetic" in bench_result["deployments"]

    def test_cached_path_is_bitwise_equal(self, bench_result):
        assert bench_result["parity"]["cached_bitwise_equal"] is True

    def test_cached_beats_uncached_mean_latency(self, bench_result):
        # The acceptance bar for the prepared-deployment cache: strictly
        # less work per batch must show up as lower best-of mean latency.
        synthetic = bench_result["deployments"]["synthetic"]
        assert (synthetic["paths"]["cached"]["mean_ms"]
                < synthetic["paths"]["uncached"]["mean_ms"])
        assert synthetic["speedup_cached_vs_uncached"] > 1.0

    def test_runtime_section_populated(self, bench_result):
        runtime = bench_result["deployments"]["synthetic"]["runtime"]
        assert runtime["requests"] == 12
        assert runtime["throughput_rps"] > 0

    def test_frozen_path_present_for_sgc(self, bench_result):
        synthetic = bench_result["deployments"]["synthetic"]
        assert "frozen" in synthetic["paths"]
        assert np.isfinite(bench_result["parity"]["frozen_max_abs_diff"])

    def test_json_roundtrip(self, bench_result, tmp_path):
        path = write_benchmark_json(bench_result, tmp_path / "bench.json")
        loaded = json.loads(path.read_text())
        check_benchmark_schema(loaded)
        assert loaded["dataset"] == "tiny-sim"

    def test_schema_checker_rejects_drift(self, bench_result):
        broken = json.loads(json.dumps(bench_result))
        del broken["deployments"]["synthetic"]["paths"]["cached"]["p95_ms"]
        with pytest.raises(ServingError):
            check_benchmark_schema(broken)
        with pytest.raises(ServingError):
            check_benchmark_schema({"kind": "serving-benchmark"})

    def test_precision_axis(self, bench_result):
        precision = bench_result["precision"]
        assert precision["path"] == "frozen"
        assert precision["fused_bitwise_equal"] is True
        assert set(precision["modes"]) == {"float64", "float32", "int8"}
        # reduced modes really shrink the saved artifact
        assert precision["modes"]["float32"]["artifact_bytes_ratio"] < 1.0
        assert precision["modes"]["int8"]["artifact_bytes_ratio"] <= 0.5
        for mode in ("float64", "float32", "int8"):
            assert 0.0 <= precision["modes"][mode]["accuracy"] <= 1.0

    def test_schema_checker_rejects_missing_precision(self, bench_result):
        broken = json.loads(json.dumps(bench_result))
        del broken["precision"]["modes"]["int8"]
        with pytest.raises(ServingError):
            check_benchmark_schema(broken)

    def test_gate_flags_slow_float32(self, bench_result):
        broken = json.loads(json.dumps(bench_result))
        broken["precision"]["modes"]["float32"]["speedup_vs_float64"] = 0.9
        failures = gate_serving_benchmark(broken)
        assert any("float32" in failure for failure in failures)

    def test_gate_flags_broken_fused_parity(self, bench_result):
        broken = json.loads(json.dumps(bench_result))
        broken["precision"]["fused_bitwise_equal"] = False
        failures = gate_serving_benchmark(broken)
        assert any("fused" in failure for failure in failures)

    def test_gate_passes_on_structural_invariants(self, bench_result):
        # tiny-sim timing is too noisy for the speedup floor, so relax
        # the perf thresholds and keep the structural checks strict:
        # bitwise parities and the int8 artifact ceiling must hold
        failures = gate_serving_benchmark(
            bench_result, min_float32_speedup=0.0,
            max_accuracy_drop=100.0, max_int8_bytes_ratio=0.5)
        assert failures == []
