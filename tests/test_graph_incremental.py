"""Eq. (3) / Eq. (11): attaching inductive nodes."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph import (
    attach_to_original,
    attach_to_synthetic,
    convert_connections,
)


@pytest.fixture
def base():
    adjacency = sp.csr_matrix(np.array([
        [0, 1, 0],
        [1, 0, 1],
        [0, 1, 0]], dtype=float))
    features = np.arange(6, dtype=float).reshape(3, 2)
    return adjacency, features


class TestAttachOriginal:
    def test_block_structure(self, base):
        adjacency, features = base
        inc = sp.csr_matrix(np.array([[1.0, 0.0, 0.0]]))
        x_new = np.array([[9.0, 9.0]])
        attached = attach_to_original(adjacency, features, inc, x_new)
        assert attached.num_nodes == 4
        assert attached.base_size == 3
        dense = attached.adjacency.toarray()
        assert dense[3, 0] == 1.0 and dense[0, 3] == 1.0
        assert np.allclose(dense[:3, :3], adjacency.toarray())
        assert np.allclose(attached.features[3], x_new[0])

    def test_symmetry_preserved(self, base):
        adjacency, features = base
        inc = sp.csr_matrix(np.array([[0.0, 1.0, 1.0], [1.0, 0.0, 0.0]]))
        attached = attach_to_original(adjacency, features, inc, np.zeros((2, 2)))
        dense = attached.adjacency.toarray()
        assert np.allclose(dense, dense.T)

    def test_node_batch_zeroes_intra(self, base):
        adjacency, features = base
        inc = sp.csr_matrix(np.zeros((2, 3)))
        attached = attach_to_original(adjacency, features, inc, np.zeros((2, 2)),
                                      intra=None)
        dense = attached.adjacency.toarray()
        assert np.allclose(dense[3:, 3:], 0.0)

    def test_graph_batch_keeps_intra(self, base):
        adjacency, features = base
        inc = sp.csr_matrix(np.zeros((2, 3)))
        intra = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        attached = attach_to_original(adjacency, features, inc, np.zeros((2, 2)),
                                      intra=intra)
        assert attached.adjacency.toarray()[3, 4] == 1.0

    def test_inductive_indices(self, base):
        adjacency, features = base
        inc = sp.csr_matrix(np.zeros((2, 3)))
        attached = attach_to_original(adjacency, features, inc, np.zeros((2, 2)))
        assert np.array_equal(attached.inductive_indices(), [3, 4])

    def test_feature_dim_mismatch_rejected(self, base):
        adjacency, features = base
        inc = sp.csr_matrix(np.zeros((1, 3)))
        with pytest.raises(GraphError):
            attach_to_original(adjacency, features, inc, np.zeros((1, 5)))

    def test_incremental_shape_mismatch_rejected(self, base):
        adjacency, features = base
        with pytest.raises(GraphError):
            attach_to_original(adjacency, features,
                               sp.csr_matrix(np.zeros((1, 7))), np.zeros((1, 2)))


class TestConvertConnections:
    def test_one_hot_mapping_selects_columns(self):
        inc = sp.csr_matrix(np.array([[1.0, 1.0, 0.0]]))
        mapping = sp.csr_matrix(np.array([[1.0, 0.0], [0.0, 1.0], [0.0, 0.0]]))
        converted = convert_connections(inc, mapping)
        assert np.allclose(converted.toarray(), [[1.0, 1.0]])

    def test_dense_mapping_supported(self):
        inc = sp.csr_matrix(np.array([[1.0, 0.0]]))
        mapping = np.array([[0.5, 0.5], [0.0, 1.0]])
        converted = convert_connections(inc, mapping)
        assert np.allclose(converted.toarray(), [[0.5, 0.5]])

    def test_weights_combine_linearly(self):
        inc = sp.csr_matrix(np.array([[2.0, 1.0]]))
        mapping = np.array([[0.25, 0.0], [0.5, 0.5]])
        converted = convert_connections(inc, mapping).toarray()
        assert np.allclose(converted, [[2 * 0.25 + 1 * 0.5, 0.5]])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GraphError):
            convert_connections(sp.csr_matrix(np.zeros((1, 3))),
                                np.zeros((2, 2)))

    def test_zero_rows_eliminated(self):
        inc = sp.csr_matrix(np.array([[0.0, 0.0]]))
        converted = convert_connections(inc, np.ones((2, 2)))
        assert converted.nnz == 0


class TestDuplicateEntryPolicy:
    """Regression: duplicated (row, col) pairs in the raw COO input used
    to be summed silently by the CSR conversion, double-counting what an
    at-least-once edge feed meant as one edge."""

    def _dup_coo(self):
        # edge (0, 1) reported twice, edge (0, 0) once
        return sp.coo_matrix(
            (np.array([1.0, 1.0, 1.0]),
             (np.array([0, 0, 0]), np.array([1, 1, 0]))), shape=(1, 3))

    def test_sum_policy_is_explicit_default(self):
        mapping = np.eye(3)
        converted = convert_connections(self._dup_coo(), mapping)
        assert np.allclose(converted.toarray(), [[1.0, 2.0, 0.0]])

    def test_distinct_policy_collapses_duplicates(self):
        mapping = np.eye(3)
        converted = convert_connections(self._dup_coo(), mapping,
                                        dedup="distinct")
        assert np.allclose(converted.toarray(), [[1.0, 1.0, 0.0]])

    def test_distinct_keeps_largest_weight(self):
        inc = sp.coo_matrix(
            (np.array([0.5, 2.0]), (np.array([0, 0]), np.array([1, 1]))),
            shape=(1, 2))
        converted = convert_connections(inc, np.eye(2), dedup="distinct")
        assert converted.toarray()[0, 1] == 2.0

    def test_distinct_matches_deduped_input_bitwise(self):
        rng = np.random.default_rng(4)
        mapping = sp.csr_matrix(rng.random((6, 3)))
        row = np.array([0, 0, 1, 1, 1, 2])
        col = np.array([2, 2, 0, 0, 5, 3])
        dup = sp.coo_matrix((np.ones(6), (row, col)), shape=(3, 6))
        clean = sp.coo_matrix(
            (np.ones(4), (np.array([0, 1, 1, 2]), np.array([2, 0, 5, 3]))),
            shape=(3, 6))
        a = convert_connections(dup, mapping, dedup="distinct")
        b = convert_connections(clean, mapping, dedup="distinct")
        assert np.array_equal(a.toarray(), b.toarray())

    def test_duplicate_csr_stored_entries_canonicalized(self):
        # a CSR built from raw arrays can hold duplicate stored entries
        inc = sp.csr_matrix(
            (np.array([1.0, 1.0]), np.array([0, 0]), np.array([0, 2])),
            shape=(1, 2))
        summed = convert_connections(inc, np.eye(2))
        distinct = convert_connections(inc, np.eye(2), dedup="distinct")
        assert summed.toarray()[0, 0] == 2.0
        assert distinct.toarray()[0, 0] == 1.0

    def test_unknown_policy_rejected(self):
        with pytest.raises(GraphError, match="dedup"):
            convert_connections(self._dup_coo(), np.eye(3), dedup="first")

    def test_attach_to_synthetic_forwards_policy(self):
        inc = self._dup_coo()
        mapping = np.eye(3)
        attached = attach_to_synthetic(np.zeros((3, 3)), np.zeros((3, 2)),
                                       inc, np.zeros((1, 2)), mapping,
                                       dedup="distinct")
        assert attached.adjacency.toarray()[3, 1] == 1.0  # not 2.0


class TestAttachSynthetic:
    def test_full_equation_11(self):
        synthetic_adjacency = np.array([[0.0, 0.8], [0.8, 0.0]])
        synthetic_features = np.array([[1.0, 0.0], [0.0, 1.0]])
        inc = sp.csr_matrix(np.array([[1.0, 0.0, 1.0]]))  # edges to orig 0, 2
        mapping = np.array([[1.0, 0.0], [0.0, 1.0], [0.0, 1.0]])
        attached = attach_to_synthetic(synthetic_adjacency, synthetic_features,
                                       inc, np.array([[0.5, 0.5]]), mapping)
        dense = attached.adjacency.toarray()
        assert attached.base_size == 2
        # aM = [1, 1]: the inductive node connects to both synthetic nodes.
        assert dense[2, 0] == 1.0 and dense[2, 1] == 1.0
        assert np.allclose(dense[:2, :2], synthetic_adjacency)
        assert np.allclose(dense, dense.T)

    def test_sparse_mapping(self):
        inc = sp.csr_matrix(np.array([[1.0, 0.0]]))
        mapping = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        attached = attach_to_synthetic(np.zeros((2, 2)), np.zeros((2, 3)),
                                       inc, np.zeros((1, 3)), mapping)
        assert attached.adjacency.toarray()[2, 1] == 1.0


class TestEdgeCases:
    """Empty batches, isolated nodes, and non-CSR inputs."""

    def test_empty_batch_original(self, base):
        adjacency, features = base
        attached = attach_to_original(adjacency, features,
                                      sp.csr_matrix((0, 3)), np.zeros((0, 2)))
        assert attached.num_new == 0
        assert attached.num_nodes == 3
        assert np.allclose(attached.adjacency.toarray(), adjacency.toarray())
        assert attached.inductive_indices().size == 0

    def test_empty_batch_synthetic(self):
        attached = attach_to_synthetic(
            np.zeros((2, 2)), np.zeros((2, 3)), sp.csr_matrix((0, 4)),
            np.zeros((0, 3)), np.ones((4, 2)))
        assert attached.num_new == 0
        assert attached.adjacency.shape == (2, 2)

    def test_zero_connection_nodes(self, base):
        # arrivals with no edges into the base graph stay isolated but
        # still get rows/features in the augmented graph
        adjacency, features = base
        attached = attach_to_original(adjacency, features,
                                      sp.csr_matrix(np.zeros((2, 3))),
                                      np.ones((2, 2)))
        dense = attached.adjacency.toarray()
        assert not dense[3:, :].any() and not dense[:, 3:].any()
        assert attached.features.shape == (5, 2)

    def test_zero_connection_through_mapping(self):
        converted = convert_connections(sp.csr_matrix((2, 3)), np.ones((3, 2)))
        assert converted.shape == (2, 2)
        assert converted.nnz == 0

    @pytest.mark.parametrize("wrap", (sp.coo_matrix, sp.csc_matrix,
                                      np.asarray, lambda m: m.tolist()))
    def test_non_csr_incremental_accepted(self, base, wrap):
        adjacency, features = base
        inc = wrap(np.array([[1.0, 0.0, 0.0]]))
        attached = attach_to_original(adjacency, features, inc,
                                      np.ones((1, 2)))
        assert attached.adjacency[3, 0] == 1.0

    @pytest.mark.parametrize("wrap", (sp.coo_matrix, sp.csc_matrix,
                                      np.asarray))
    def test_non_csr_convert_inputs(self, wrap):
        inc = wrap(np.array([[1.0, 1.0, 0.0]]))
        mapping = wrap(np.array([[1.0, 0.0], [0.0, 1.0], [0.0, 0.0]]))
        converted = convert_connections(inc, mapping)
        assert isinstance(converted, sp.csr_matrix)
        assert np.allclose(converted.toarray(), [[1.0, 1.0]])

    def test_sparse_mapping_shape_mismatch_is_graph_error(self):
        # regression: the sparse-mapping path used to leak scipy's raw
        # ValueError instead of the library's GraphError
        with pytest.raises(GraphError):
            convert_connections(sp.csr_matrix(np.zeros((1, 3))),
                                sp.csr_matrix(np.zeros((2, 2))))

    def test_empty_batch_serves_through_attach(self, base):
        # the augmented graph of an empty batch still normalizes and serves
        from repro.graph.ops import symmetric_normalize
        adjacency, features = base
        attached = attach_to_original(adjacency, features,
                                      sp.csr_matrix((0, 3)), np.zeros((0, 2)))
        operator = symmetric_normalize(attached.adjacency)
        assert operator.shape == (3, 3)
