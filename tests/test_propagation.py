"""Label propagation and error propagation calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.graph import adjacency_from_edges, attach_to_original
from repro.propagation import (
    error_propagation,
    label_propagation,
    propagate_scores,
    softmax_rows,
)


def two_cluster_attached(num_new=2):
    """Two 4-node cliques; inductive nodes hang off one clique each."""
    edges = []
    for block, offset in ((0, 0), (1, 4)):
        for i in range(4):
            for j in range(i + 1, 4):
                edges.append([offset + i, offset + j])
    adjacency = adjacency_from_edges(np.array(edges), 8)
    features = np.zeros((8, 2))
    import scipy.sparse as sp
    inc = sp.csr_matrix(
        (np.ones(num_new), (np.arange(num_new), [0, 4][:num_new])),
        shape=(num_new, 8))
    return attach_to_original(adjacency, features, inc, np.zeros((num_new, 2)))


class TestLabelPropagation:
    def test_propagates_cluster_labels(self):
        attached = two_cluster_attached()
        base_labels = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        scores = label_propagation(attached, base_labels, 2,
                                   alpha=0.9, iterations=30)
        assert scores.shape == (2, 2)
        assert scores[0].argmax() == 0
        assert scores[1].argmax() == 1

    def test_prior_breaks_isolation(self):
        attached = two_cluster_attached(num_new=1)
        base_labels = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        prior = np.array([[0.0, 10.0]])
        scores = label_propagation(attached, base_labels, 2, prior=prior,
                                   alpha=0.2, iterations=3)
        # Weak propagation + strong prior: prior should still dominate.
        assert scores[0, 1] > scores[0, 0]

    def test_time_measurement(self):
        attached = two_cluster_attached()
        base_labels = np.zeros(8, dtype=int)
        scores, elapsed = label_propagation(attached, base_labels, 2,
                                            return_time=True)
        assert elapsed >= 0.0
        assert scores.shape == (2, 2)

    def test_label_length_validation(self):
        attached = two_cluster_attached()
        with pytest.raises(InferenceError):
            label_propagation(attached, np.zeros(3, dtype=int), 2)

    def test_prior_shape_validation(self):
        attached = two_cluster_attached()
        with pytest.raises(InferenceError):
            label_propagation(attached, np.zeros(8, dtype=int), 2,
                              prior=np.zeros((5, 2)))

    def test_alpha_validation(self):
        attached = two_cluster_attached()
        with pytest.raises(InferenceError):
            label_propagation(attached, np.zeros(8, dtype=int), 2, alpha=1.0)

    def test_clamping_preserves_base_scores(self):
        attached = two_cluster_attached()
        initial = np.zeros((10, 2))
        initial[:8, 0] = 1.0
        out = propagate_scores(attached, initial, np.arange(8),
                               initial[:8], alpha=0.5, iterations=5)
        assert np.allclose(out[:8], initial[:8])


class TestErrorPropagation:
    def test_corrects_systematic_bias(self):
        attached = two_cluster_attached()
        base_labels = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        # Model systematically under-scores class 0 in cluster one.
        base_logits = np.zeros((8, 2))
        base_logits[:4, 1] = 1.0   # wrong: predicts class 1 in cluster 0
        base_logits[4:, 1] = 5.0   # right in cluster 1
        inductive_logits = np.zeros((2, 2))
        inductive_logits[:, 1] = 1.0  # both lean class 1
        corrected = error_propagation(attached, base_labels, base_logits,
                                      inductive_logits, 2, alpha=0.9,
                                      iterations=30, gamma=1.0)
        # Node 0 attaches to the biased cluster: correction flips it to 0.
        assert corrected[0].argmax() == 0
        # Node 1 attaches to the well-predicted cluster: stays class 1.
        assert corrected[1].argmax() == 1

    def test_zero_error_changes_nothing(self):
        attached = two_cluster_attached()
        base_labels = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        base_logits = np.full((8, 2), -20.0)
        base_logits[np.arange(8), base_labels] = 20.0
        inductive_logits = np.array([[0.5, 0.2], [0.1, 0.9]])
        corrected = error_propagation(attached, base_labels, base_logits,
                                      inductive_logits, 2, gamma=1.0)
        assert np.allclose(corrected, softmax_rows(inductive_logits), atol=1e-6)

    def test_time_measurement(self):
        attached = two_cluster_attached()
        out, elapsed = error_propagation(
            attached, np.zeros(8, dtype=int), np.zeros((8, 2)),
            np.zeros((2, 2)), 2, return_time=True)
        assert elapsed >= 0.0

    def test_shape_validation(self):
        attached = two_cluster_attached()
        with pytest.raises(InferenceError):
            error_propagation(attached, np.zeros(8, dtype=int),
                              np.zeros((5, 2)), np.zeros((2, 2)), 2)
        with pytest.raises(InferenceError):
            error_propagation(attached, np.zeros(8, dtype=int),
                              np.zeros((8, 2)), np.zeros((3, 2)), 2)
        with pytest.raises(InferenceError):
            error_propagation(attached, np.zeros(8, dtype=int),
                              np.zeros((8, 2)), np.zeros((2, 2)), 2, alpha=2.0)


class TestSoftmaxRows:
    def test_rows_sum_to_one(self):
        out = softmax_rows(np.random.default_rng(0).standard_normal((4, 5)))
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_stable_for_large_values(self):
        out = softmax_rows(np.array([[1000.0, 0.0]]))
        assert np.all(np.isfinite(out))
