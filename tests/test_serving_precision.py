"""Numeric serving modes: kernels, masking semantics, mode plumbing.

The reduced-precision contract is accuracy-gated, not bitwise — but the
*masking* semantics (zero-degree rows stay exactly zero) must match the
float64 path exactly in every mode.  These tests pin that boundary for
``_inv_sqrt``, the fused-scale kernel, the int8 quantizer, and the
frozen serve path end to end, including empty batches.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ServingError
from repro.graph.datasets import IncrementalBatch
from repro.graph.graph import Graph
from repro.graph.stream import GraphDelta
from repro.nn import make_model
from repro.serving import PreparedDeployment
from repro.serving.prepared import (
    PRECISIONS,
    _dequantize,
    _fused_scale,
    _inv_sqrt,
    _quantize_columns,
)

REDUCED = ("float32", "int8")


class TestInvSqrt:
    def test_zero_degree_rows_stay_exactly_zero(self):
        degrees = np.array([4.0, 0.0, 1.0, 0.0, 9.0])
        inv = _inv_sqrt(degrees)
        assert inv[1] == 0.0 and inv[3] == 0.0
        assert np.array_equal(inv, np.array([0.5, 0.0, 1.0, 0.0, 1.0 / 3]))

    def test_zeros_survive_the_float32_cast_exactly(self):
        # reduced modes inherit the float64 mask by casting: exact zeros
        # must stay exact zeros, not become tiny non-zero values
        degrees = np.array([0.0, 2.0, 0.0])
        inv32 = _inv_sqrt(degrees).astype(np.float32)
        assert inv32[0] == np.float32(0.0)
        assert inv32[2] == np.float32(0.0)
        assert inv32[1] > 0

    def test_empty_input(self):
        assert _inv_sqrt(np.array([])).shape == (0,)


class TestFusedScale:
    def _block(self):
        rng = np.random.default_rng(11)
        dense = (rng.random((6, 8)) * (rng.random((6, 8)) < 0.5))
        return sp.csr_matrix(dense)

    @pytest.mark.parametrize("dtype", (np.float64, np.float32))
    def test_matches_unfused_reference_bitwise(self, dtype):
        block = self._block()
        inv_row = _inv_sqrt(np.arange(6, dtype=np.float64)).astype(
            dtype, copy=False)
        inv_col = _inv_sqrt(np.arange(8, dtype=np.float64) % 3).astype(
            dtype, copy=False)
        fused = _fused_scale(block, inv_row, inv_col, dtype)
        # the unfused reference: dense diagonal scaling with the same
        # (inv_row * a) * inv_col multiply order, read back at the
        # block's stored positions (dense keeps the masked zeros that
        # a sparse product would prune away)
        dense = (inv_row[:, None] * block.toarray().astype(dtype)
                 ) * inv_col[None, :]
        rows = np.repeat(np.arange(6), np.diff(block.indptr))
        assert fused.dtype == dtype
        assert np.array_equal(fused, dense[rows, block.indices])

    @pytest.mark.parametrize("dtype", (np.float64, np.float32))
    def test_zero_degree_masking_is_exact(self, dtype):
        block = self._block()
        inv_row = np.array([0.7, 0.0, 0.3, 0.0, 1.1, 0.5], dtype=dtype)
        inv_col = np.array([0.2, 0.0, 0.4, 0.9, 0.0, 0.6, 0.1, 0.8],
                           dtype=dtype)
        scaled = _fused_scale(block, inv_row, inv_col, dtype)
        rows = np.repeat(np.arange(6), np.diff(block.indptr))
        masked = (inv_row[rows] == 0) | (inv_col[block.indices] == 0)
        assert np.all(scaled[masked] == 0.0)  # exact, not approximate
        assert np.all(scaled[~masked] != 0.0)

    def test_float32_zero_pattern_matches_float64_exactly(self):
        block = self._block()
        inv_row = _inv_sqrt(np.array([2.0, 0.0, 1.0, 4.0, 0.0, 3.0]))
        inv_col = _inv_sqrt(np.arange(8, dtype=np.float64) % 4)
        scaled64 = _fused_scale(block, inv_row, inv_col, np.float64)
        scaled32 = _fused_scale(block, inv_row.astype(np.float32),
                                inv_col.astype(np.float32), np.float32)
        assert np.array_equal(scaled64 == 0.0, scaled32 == 0.0)

    @pytest.mark.parametrize("dtype", (np.float64, np.float32))
    def test_empty_block(self, dtype):
        empty = sp.csr_matrix((0, 5))
        out = _fused_scale(empty, np.zeros(0, dtype=dtype),
                           np.ones(5, dtype=dtype), dtype)
        assert out.shape == (0,)
        dense_zero = sp.csr_matrix((3, 5))  # rows without stored entries
        out = _fused_scale(dense_zero, np.ones(3, dtype=dtype),
                           np.ones(5, dtype=dtype), dtype)
        assert out.shape == (0,)


class TestInt8Quantization:
    def test_exact_zeros_round_trip_exactly(self):
        matrix = np.array([[0.0, 1.5], [0.0, -3.0], [0.0, 0.25]])
        q, scale = _quantize_columns(matrix)
        back = _dequantize(q, scale)
        assert np.all(back[:, 0] == 0.0)  # the all-zero column
        assert back[2, 1] == np.float32(0.0) or back[2, 1] != 0.0
        assert np.all((matrix == 0.0) == (back == 0.0))

    def test_all_zero_column_scale_is_one(self):
        q, scale = _quantize_columns(np.zeros((4, 3)))
        assert np.array_equal(scale, np.ones(3, dtype=np.float32))
        assert np.array_equal(q, np.zeros((4, 3), dtype=np.int8))

    def test_values_clip_to_int8_range(self):
        matrix = np.array([[-10.0, 127.0], [10.0, -254.0]])
        q, scale = _quantize_columns(matrix)
        assert q.dtype == np.int8
        assert q.min() >= -127 and q.max() <= 127
        assert np.abs(_dequantize(q, scale) - matrix).max() <= np.abs(
            matrix).max() / 127

    def test_empty_matrix(self):
        q, scale = _quantize_columns(np.zeros((0, 4)))
        assert q.shape == (0, 4) and scale.shape == (4,)
        assert _dequantize(q, scale).shape == (0, 4)


@pytest.fixture(scope="module")
def masked_prepared():
    """One prepared deployment per mode over a base graph with isolated
    nodes (their only base_loops entry is the self-loop) and planted
    exact-zero feature entries — the masking boundary cases."""
    rng = np.random.default_rng(5)
    n, d, classes = 24, 12, 3
    dense = (rng.random((n, n)) < 0.18).astype(np.float64)
    dense = np.triu(dense, 1)
    dense = dense + dense.T
    for isolated in (7, 13):  # two isolated nodes: degree exactly zero
        dense[isolated, :] = 0.0
        dense[:, isolated] = 0.0
    features = rng.standard_normal((n, d))
    features[np.abs(features) < 0.3] = 0.0  # plant exact zeros
    base = Graph(sp.csr_matrix(dense), features,
                 rng.integers(0, classes, size=n))
    model = make_model("sgc", d, classes, seed=0)
    return {mode: PreparedDeployment(model, "original", base,
                                     precision=mode)
            for mode in PRECISIONS}


def _batch(features, incremental, num_base):
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    return IncrementalBatch(
        features=features, incremental=sp.csr_matrix(incremental),
        intra=sp.csr_matrix((n, n)),
        labels=np.full(n, -1, dtype=np.int64))


class TestFrozenModeMasking:
    @pytest.mark.parametrize("mode", PRECISIONS)
    @pytest.mark.parametrize("batch_mode", ("graph", "node"))
    def test_empty_batch(self, masked_prepared, mode, batch_mode):
        prepared = masked_prepared[mode]
        batch = _batch(np.zeros((0, 12)), sp.csr_matrix((0, 24)), 24)
        logits, _, _ = prepared.serve_batch_frozen(batch, batch_mode)
        assert logits.shape == (0, 3)

    def test_frozen_scaling_is_the_float64_mask_cast_once(
            self, masked_prepared):
        # the mask-then-cast order: reduced modes must hold exactly the
        # float64 D^-1/2 vector cast to storage dtype, never a D^-1/2
        # recomputed in float32 (base_loops keeps degrees positive here,
        # but the cast-order contract is what the kernels rely on)
        inv64 = masked_prepared["float64"]._standalone_inv_sqrt_degrees()
        inv32 = masked_prepared["float32"]._standalone_inv_sqrt_degrees()
        assert inv64.dtype == np.float64 and inv32.dtype == np.float32
        assert np.array_equal(inv32, inv64.astype(np.float32))

    @pytest.mark.parametrize("mode", PRECISIONS)
    def test_explicit_zero_weight_links_contribute_exactly_nothing(
            self, masked_prepared, mode):
        # a stored-but-zero incremental weight must serve bitwise
        # identically to no link at all in every mode: it adds nothing
        # to the degree and is eliminated before the fused scaling
        prepared = masked_prepared[mode]
        rng = np.random.default_rng(9)
        feats = rng.standard_normal((2, 12))
        zero_link = sp.csr_matrix(
            (np.array([0.0]), (np.array([0]), np.array([3]))),
            shape=(2, 24))
        logits_zero, _, _ = prepared.serve_batch_frozen(
            _batch(feats, zero_link, 24), "node")
        logits_none, _, _ = prepared.serve_batch_frozen(
            _batch(feats, sp.csr_matrix((2, 24)), 24), "node")
        assert np.array_equal(logits_zero, logits_none)

    def test_reduced_modes_keep_float64_zero_pattern(self, masked_prepared):
        batch = _batch(np.zeros((3, 12)),  # all-zero features
                       np.zeros((3, 24)), 24)  # and no links
        reference, _, _ = masked_prepared["float64"].serve_batch_frozen(
            batch, "node")
        for mode in REDUCED:
            logits, _, _ = masked_prepared[mode].serve_batch_frozen(
                batch, "node")
            # zero features + zero links propagate exact zeros before the
            # classifier bias in every mode, so the logits coincide
            assert np.array_equal(logits == 0.0, reference == 0.0)
            np.testing.assert_allclose(logits, reference, rtol=1e-5,
                                       atol=1e-6)


class TestModePlumbing:
    def test_invalid_precision_rejected(self, masked_prepared):
        base = masked_prepared["float64"].base
        model = masked_prepared["float64"].model
        with pytest.raises(ServingError, match="precision"):
            PreparedDeployment(model, "original", base, precision="float16")

    @pytest.mark.parametrize("mode", REDUCED)
    def test_streaming_deltas_require_float64(self, masked_prepared, mode):
        delta = GraphDelta(add_features=np.zeros((1, 12)),
                           add_labels=np.array([-1]))
        with pytest.raises(ServingError, match="float64"):
            masked_prepared[mode].apply_delta(delta)

    @pytest.mark.parametrize("mode", PRECISIONS)
    def test_repr_names_the_mode(self, masked_prepared, mode):
        assert f"precision={mode!r}" in repr(masked_prepared[mode])
