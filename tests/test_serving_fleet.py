"""Fleet serving: routers, zero-copy mmap artifacts, failover, hot swap."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import api
from repro.api import DeploymentBundle
from repro.cli import main
from repro.errors import ArtifactError, GraphError, RegistryError, ServingError
from repro.registry import ROUTERS, make_router
from repro.serving import ServingFleet, replay_fleet, split_requests
from repro.serving.fleet import (
    ConsistentHashRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    Router,
)
from repro.serving.fleet_bench import (
    check_fleet_benchmark_schema,
    gate_fleet_benchmark,
    run_fleet_benchmark,
)
from repro.serving.prepared import PreparedDeployment
from repro.utils.artifacts import open_npz_archive, save_npz


# ----------------------------------------------------------------------
# Shared artifacts (session-cached: deploys and process spawns are slow)
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def fleet_bundles(tmp_path_factory):
    """Deployed tiny-sim bundles + mmap-layout artifacts, per deployment."""
    root = tmp_path_factory.mktemp("fleet-artifacts")
    out = {}
    for deployment in ("synthetic", "original"):
        bundle = api.deploy("tiny-sim", "mcond", 9, profile="quick",
                            deployment=deployment)
        path = bundle.save(root / f"{deployment}.npz", layout="mmap")
        out[deployment] = (bundle, path)
    return out


@pytest.fixture(scope="session")
def prepared_pairs(fleet_bundles):
    """(eager, mmap, evaluation batch) per deployment kind."""
    pairs = {}
    for deployment, (bundle, path) in fleet_bundles.items():
        pairs[deployment] = (
            PreparedDeployment.from_bundle(DeploymentBundle.load(path)),
            PreparedDeployment.from_bundle(
                DeploymentBundle.load(path, mmap=True)),
            api.evaluation_batch(bundle))
    return pairs


@pytest.fixture(scope="session")
def synthetic_artifact(fleet_bundles):
    return fleet_bundles["synthetic"][1]


@pytest.fixture(scope="session")
def synthetic_requests(fleet_bundles):
    bundle, _ = fleet_bundles["synthetic"]
    return split_requests(api.evaluation_batch(bundle), 16, 2)


# ----------------------------------------------------------------------
# Routing policies
# ----------------------------------------------------------------------
class TestRouters:
    def test_round_robin_cycles_evenly(self):
        router = RoundRobinRouter()
        picks = [router.select(None, [0, 1, 2], {}) for _ in range(9)]
        assert picks == [0, 1, 2] * 3

    def test_round_robin_adapts_to_candidate_changes(self):
        router = RoundRobinRouter()
        router.select(None, [0, 1], {})
        assert router.select(None, [1], {}) == 1

    def test_least_loaded_picks_minimum(self):
        router = LeastLoadedRouter()
        assert router.select(None, [0, 1, 2], {0: 4, 1: 1, 2: 3}) == 1

    def test_least_loaded_breaks_ties_by_id(self):
        router = LeastLoadedRouter()
        assert router.select(None, [2, 0, 1], {0: 1, 1: 1, 2: 1}) == 0

    def test_consistent_hash_is_sticky(self):
        router = ConsistentHashRouter()
        picks = {router.select("user-7", [0, 1, 2], {}) for _ in range(10)}
        assert len(picks) == 1

    def test_consistent_hash_is_deterministic_across_instances(self):
        first = ConsistentHashRouter()
        second = ConsistentHashRouter()
        for key in ("a", "b", "user-42"):
            assert (first.select(key, [0, 1, 2], {})
                    == second.select(key, [0, 1, 2], {}))

    def test_consistent_hash_only_remaps_lost_arcs(self):
        router = ConsistentHashRouter()
        keys = [f"key-{i}" for i in range(64)]
        before = {key: router.select(key, [0, 1, 2], {}) for key in keys}
        after = {key: router.select(key, [0, 2], {}) for key in keys}
        for key in keys:
            if before[key] != 1:  # survivors keep their keys
                assert after[key] == before[key]
            else:
                assert after[key] in (0, 2)

    def test_consistent_hash_keyless_falls_back_round_robin(self):
        router = ConsistentHashRouter()
        picks = [router.select(None, [0, 1], {}) for _ in range(4)]
        assert picks == [0, 1, 0, 1]

    def test_registry_exposes_policies(self):
        for name in ("round-robin", "least-loaded", "consistent-hash"):
            assert name in ROUTERS
            assert make_router(name) is not None
        with pytest.raises(RegistryError):
            make_router("no-such-policy")


# ----------------------------------------------------------------------
# Zero-copy artifact loading
# ----------------------------------------------------------------------
class TestMappedArchive:
    def test_mmap_round_trip_bitwise(self, tmp_path):
        payload = {
            "floats": np.arange(24, dtype=np.float64).reshape(4, 6),
            "ints": np.array([3, 1, 2], dtype=np.int64),
            "scalar": np.asarray(7),
            "text": np.asarray("hello artifact"),
            "empty": np.zeros((0, 3)),
        }
        path = save_npz(tmp_path / "raw.npz", payload, compressed=False)
        with open_npz_archive(path, mmap=True) as archive:
            assert sorted(archive.files) == sorted(payload)
            for name, want in payload.items():
                got = archive[name]
                assert np.array_equal(got, want)
                assert got.dtype == want.dtype
                assert not got.flags.writeable
            assert archive.mapped == set(payload)

    def test_compressed_members_fall_back_to_eager(self, tmp_path):
        payload = {"x": np.arange(10, dtype=np.float64)}
        path = save_npz(tmp_path / "deflated.npz", payload, compressed=True)
        with open_npz_archive(path, mmap=True) as archive:
            assert np.array_equal(archive["x"], payload["x"])
            assert archive.mapped == set()

    def test_mmap_arrays_survive_close(self, tmp_path):
        path = save_npz(tmp_path / "raw.npz",
                        {"x": np.arange(8.0)}, compressed=False)
        with open_npz_archive(path, mmap=True) as archive:
            view = archive["x"]
        assert view.sum() == 28.0

    def test_truncated_archive_raises_artifact_error(self, tmp_path):
        path = save_npz(tmp_path / "raw.npz",
                        {"x": np.arange(64.0)}, compressed=False)
        path.write_bytes(path.read_bytes()[:80])
        for mmap_flag in (False, True):
            with pytest.raises(ArtifactError):
                with open_npz_archive(path, mmap=mmap_flag):
                    pass

    def test_mid_read_corruption_raises_artifact_error(self, tmp_path):
        path = save_npz(tmp_path / "big.npz",
                        {f"arr{i}": np.random.default_rng(i).normal(size=256)
                         for i in range(4)})
        data = bytearray(path.read_bytes())
        mid = len(data) // 3
        data[mid:mid + 32] = b"\x00" * 32  # member payload, central dir intact
        path.write_bytes(bytes(data))
        with pytest.raises(ArtifactError, match="cannot read"):
            with open_npz_archive(path) as archive:
                for name in archive.files:
                    archive[name]

    def test_repro_errors_pass_through_untranslated(self, tmp_path):
        path = save_npz(tmp_path / "ok.npz", {"x": np.arange(4.0)})
        with pytest.raises(GraphError):
            with open_npz_archive(path):
                raise GraphError("domain failure, not a read failure")


class TestBundleMmapParity:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_serve_batch_bitwise_identical(self, prepared_pairs, data):
        """Property: mmap- and eager-loaded deployments serve identical
        bits across graph/node batches, both deployment kinds, and any
        request slice."""
        deployment = data.draw(st.sampled_from(["synthetic", "original"]))
        mode = data.draw(st.sampled_from(["graph", "node"]))
        eager, mapped, batch = prepared_pairs[deployment]
        size = data.draw(st.integers(min_value=1,
                                     max_value=min(8, batch.num_nodes)))
        start = data.draw(st.integers(min_value=0,
                                      max_value=batch.num_nodes - size))
        subset = batch.subset(np.arange(start, start + size))
        left, _, _ = eager.serve_batch(subset, mode)
        right, _, _ = mapped.serve_batch(subset, mode)
        assert left.dtype == right.dtype
        assert np.array_equal(left, right)

    def test_warm_base_and_frozen_paths_match(self, prepared_pairs):
        eager, mapped, batch = prepared_pairs["original"]
        assert np.array_equal(eager.warm_base(), mapped.warm_base())
        subset = batch.subset(np.arange(4))
        left, _, _ = eager.serve_batch_frozen(subset, "node")
        right, _, _ = mapped.serve_batch_frozen(subset, "node")
        assert np.array_equal(left, right)

    def test_mmap_features_are_readonly_views(self, fleet_bundles):
        _, path = fleet_bundles["original"]
        prepared = PreparedDeployment.from_bundle(
            DeploymentBundle.load(path, mmap=True))
        assert not prepared.base_features.flags.writeable


# ----------------------------------------------------------------------
# The fleet itself
# ----------------------------------------------------------------------
class TestServingFleet:
    def test_fleet_matches_prepared_bitwise(self, synthetic_artifact,
                                            synthetic_requests):
        prepared = PreparedDeployment.from_bundle(
            DeploymentBundle.load(synthetic_artifact))
        expected = [prepared.serve_batch(r, "node")[0]
                    for r in synthetic_requests]
        with ServingFleet(synthetic_artifact, 2,
                          batch_mode="node") as fleet:
            results = replay_fleet(fleet, synthetic_requests)
        for got, want in zip(results, expected):
            assert got is not None
            assert np.array_equal(got, want)

    def test_failover_loses_no_request(self, synthetic_artifact,
                                       synthetic_requests):
        with ServingFleet(synthetic_artifact, 2,
                          batch_mode="node") as fleet:
            futures = [fleet.submit_batch(r) for r in synthetic_requests]
            fleet.kill_replica(0)
            futures += [fleet.submit_batch(r) for r in synthetic_requests]
            results = [f.result(timeout=120.0) for f in futures]
            stats = fleet.stats()
        assert all(r is not None for r in results)
        assert stats["failed"] == 0
        assert stats["completed"] == 2 * len(synthetic_requests)
        assert stats["respawns"] >= 1

    def test_hot_swap_rolls_to_new_artifact(self, synthetic_artifact,
                                            synthetic_requests, tmp_path):
        swapped = api.deploy("tiny-sim", "mcond", 6, profile="quick")
        swapped_path = swapped.save(tmp_path / "swap.npz", layout="mmap")
        want = PreparedDeployment.from_bundle(
            DeploymentBundle.load(swapped_path)).serve_batch(
                synthetic_requests[0], "node")[0]
        with ServingFleet(synthetic_artifact, 2,
                          batch_mode="node") as fleet:
            futures = [fleet.submit_batch(r) for r in synthetic_requests]
            fleet.swap(swapped_path)
            assert all(f.result(timeout=120.0) is not None for f in futures)
            got = fleet.submit_batch(
                synthetic_requests[0]).result(timeout=120.0)
            stats = fleet.stats()
        assert np.array_equal(got, want)
        assert stats["failed"] == 0
        assert all(r["generation"] >= 1
                   for r in stats["per_replica"].values())

    def test_consistent_hash_affinity_in_fleet(self, synthetic_artifact,
                                               synthetic_requests):
        with ServingFleet(synthetic_artifact, 2, router="consistent-hash",
                          batch_mode="node") as fleet:
            replay_fleet(fleet, synthetic_requests[:8],
                         keys=["sticky"] * 8)
            served = [r["served"]
                      for r in fleet.stats()["per_replica"].values()]
        assert sorted(served) == [0, 8]

    def test_fleet_traces_cover_dispatch_serve_collect(
            self, synthetic_artifact, synthetic_requests):
        with ServingFleet(synthetic_artifact, 1,
                          batch_mode="node") as fleet:
            future = fleet.submit_batch(synthetic_requests[0])
            assert future.result(timeout=120.0) is not None
            assert future.trace is not None
            stages = set(future.trace.stages())
            assert {"dispatch", "serve", "collect"} <= stages
            assert {"serve.operator", "serve.forward"} <= stages
            assert fleet.slowest(1)[0] is future.trace

    def test_reset_latencies_clears_trace_ring_with_windows(
            self, synthetic_artifact, synthetic_requests):
        """The ring, the wall window, and the stage histograms are three
        views of one measurement epoch — reset drops them together."""
        with ServingFleet(synthetic_artifact, 1,
                          batch_mode="node") as fleet:
            for request in synthetic_requests[:3]:
                fleet.submit_batch(request).result(timeout=120.0)
            stage_latency = fleet.metrics.get("repro_stage_latency_seconds")
            assert len(fleet.slowest(10)) == 3
            assert stage_latency.snapshot(
                component="fleet", stage="serve")["count"] == 3
            fleet.reset_latencies()
            assert fleet.slowest(10) == []
            assert stage_latency.snapshot(
                component="fleet", stage="serve")["count"] == 0
            assert fleet.stats()["latency_p50_ms"] is None
            # counters=False keeps the volume accounting
            assert fleet.completed == 3

    def test_reset_latencies_does_not_orphan_inflight_traces(
            self, synthetic_artifact, synthetic_requests):
        """A reset racing in-flight requests must not detach their traces:
        entries keep their span refs and complete into the fresh ring."""
        with ServingFleet(synthetic_artifact, 2,
                          batch_mode="node") as fleet:
            futures = [fleet.submit_batch(r) for r in synthetic_requests]
            fleet.reset_latencies()  # some requests are still in flight
            results = [f.result(timeout=120.0) for f in futures]
            assert all(r is not None for r in results)
            for future in futures:
                assert future.trace is not None
                assert {"dispatch", "serve",
                        "collect"} <= set(future.trace.stages())
            # whatever completed after the reset landed in the new epoch
            ring = fleet.slowest(len(futures) + 1)
            assert len(ring) <= len(futures)
            traces = {id(f.trace) for f in futures}
            assert all(id(trace) in traces for trace in ring)
            assert fleet.completed == len(futures)

    def test_telemetry_off_keeps_counters_exact(self, synthetic_artifact,
                                                synthetic_requests):
        with ServingFleet(synthetic_artifact, 1, batch_mode="node",
                          telemetry=False) as fleet:
            futures = [fleet.submit_batch(r)
                       for r in synthetic_requests[:3]]
            assert all(f.result(timeout=120.0) is not None for f in futures)
            assert all(f.trace is None for f in futures)
            assert fleet.slowest(5) == []
            assert fleet.completed == 3
            stats = fleet.stats()
            assert stats["completed"] == 3
            assert stats["latency_p50_ms"] is not None

    def test_submit_after_close_raises(self, synthetic_artifact,
                                       synthetic_requests):
        fleet = ServingFleet(synthetic_artifact, 1, batch_mode="node")
        fleet.close()
        with pytest.raises(ServingError):
            fleet.submit_batch(synthetic_requests[0])

    def test_open_fleet_from_bundle_owns_temp_artifact(self, fleet_bundles,
                                                       synthetic_requests):
        bundle, _ = fleet_bundles["synthetic"]
        fleet = api.open_fleet(bundle, replicas=1, batch_mode="node")
        artifact = fleet.pool.artifact
        try:
            assert artifact.exists()
            assert fleet.owns_artifact
            result = fleet.submit_batch(
                synthetic_requests[0]).result(timeout=120.0)
            assert result is not None
        finally:
            fleet.close()
        assert not artifact.exists()

    def test_invalid_configuration_rejected(self, synthetic_artifact):
        with pytest.raises(ServingError):
            ServingFleet(synthetic_artifact, 0)
        with pytest.raises(ServingError):
            ServingFleet(synthetic_artifact, 1, batch_mode="banana")

    def test_misbehaving_router_fails_request_not_fleet(
            self, synthetic_artifact, synthetic_requests):
        class RogueRouter(Router):
            name = "rogue"

            def select(self, key, candidates, loads):
                return 999  # never a valid candidate

        with ServingFleet(synthetic_artifact, 1, router=RogueRouter(),
                          batch_mode="node") as fleet:
            future = fleet.submit_batch(synthetic_requests[0])
            with pytest.raises(ServingError, match="picked replica"):
                future.result(timeout=30.0)
            stats = fleet.stats()
            # the dispatching thread survived: accounting is intact and
            # the health monitor is still running
            assert stats["failed"] == 1
            assert stats["pending"] == 0
            assert fleet._monitor.is_alive()

    def test_parked_request_fails_once_on_close(self, synthetic_artifact,
                                                synthetic_requests):
        fleet = ServingFleet(synthetic_artifact, 1, batch_mode="node")
        try:
            with fleet._lock:
                # no ready candidate: the submit below parks as an orphan
                fleet.pool.replicas[0].state = "draining"
            future = fleet.submit_batch(synthetic_requests[0])
            assert not future.done()
        finally:
            fleet.close(drain=False)
        with pytest.raises(ServingError):
            future.result(timeout=1.0)
        stats = fleet.stats()
        assert stats["failed"] == 1  # not double-counted via the orphan deque
        assert stats["pending"] == 0

    def test_open_fleet_cleans_temp_artifact_on_failure(self, fleet_bundles):
        import tempfile
        from pathlib import Path

        bundle, _ = fleet_bundles["synthetic"]
        tmp = Path(tempfile.gettempdir())
        before = set(tmp.glob("repro-fleet-*.npz"))
        with pytest.raises(RegistryError):
            api.open_fleet(bundle, replicas=1, router="no-such-policy")
        assert set(tmp.glob("repro-fleet-*.npz")) == before


# ----------------------------------------------------------------------
# Fleet benchmark: schema, gate, end-to-end
# ----------------------------------------------------------------------
def _fake_result(**overrides) -> dict:
    result = {
        "schema_version": 1,
        "kind": "fleet-benchmark",
        "dataset": "tiny-sim",
        "method": "mcond",
        "budget": 9,
        "seed": 0,
        "scale": 1.0,
        "deployment": "original",
        "batch_mode": "node",
        "router": "round-robin",
        "num_requests": 8,
        "nodes_per_request": 2,
        "usable_cores": 4,
        "artifact": {"layout": "mmap", "bytes": 1000},
        "cold_start": {"eager_ms": 4.0, "mmap_ms": 2.0, "speedup": 2.0,
                       "repeats": 3},
        "throughput": {
            "1": {"replicas": 1, "requests": 8, "served": 8, "wall_s": 0.1,
                  "requests_per_s": 80.0, "latency_p50_ms": 1.0,
                  "latency_p95_ms": 2.0},
            "2": {"replicas": 2, "requests": 8, "served": 8, "wall_s": 0.05,
                  "requests_per_s": 160.0, "latency_p50_ms": 1.0,
                  "latency_p95_ms": 2.0},
        },
        "scaling": {"speedup_2x": 2.0, "mode": "parallel"},
        "failover": {"replicas": 2, "killed_after": 4, "requests": 8,
                     "requests_lost": 0, "rerouted": 2, "respawns": 1,
                     "latency_p95_ms": 3.0},
        "parity": {"mmap_bitwise_equal": True},
    }
    result.update(overrides)
    return result


class TestFleetBenchContract:
    def test_schema_accepts_complete_result(self):
        check_fleet_benchmark_schema(_fake_result())

    def test_schema_rejects_missing_sections(self):
        for key in ("cold_start", "throughput", "failover", "parity"):
            broken = _fake_result()
            del broken[key]
            with pytest.raises(ServingError):
                check_fleet_benchmark_schema(broken)

    def test_schema_rejects_wrong_kind(self):
        with pytest.raises(ServingError):
            check_fleet_benchmark_schema(_fake_result(kind="nope"))

    def test_gate_passes_clean_result(self):
        assert gate_fleet_benchmark(_fake_result()) == []

    def test_gate_fails_slow_cold_start(self):
        result = _fake_result(cold_start={"eager_ms": 2.0, "mmap_ms": 4.0,
                                          "speedup": 0.5, "repeats": 3})
        assert any("cold start" in f for f in gate_fleet_benchmark(result))

    def test_gate_fails_lost_requests(self):
        result = _fake_result()
        result["failover"]["requests_lost"] = 1
        assert any("lost" in f for f in gate_fleet_benchmark(result))

    def test_gate_fails_broken_parity(self):
        result = _fake_result(parity={"mmap_bitwise_equal": False})
        assert any("bitwise" in f for f in gate_fleet_benchmark(result))

    def test_gate_requires_strict_scaling_on_multicore(self):
        result = _fake_result()
        result["throughput"]["2"]["requests_per_s"] = 70.0
        assert any("do not beat" in f for f in gate_fleet_benchmark(result))

    def test_gate_tolerates_bounded_overhead_on_single_core(self):
        result = _fake_result(usable_cores=1)
        result["throughput"]["2"]["requests_per_s"] = 75.0  # within 85%
        assert gate_fleet_benchmark(result) == []
        result["throughput"]["2"]["requests_per_s"] = 40.0  # collapse
        assert any("single-core" in f for f in gate_fleet_benchmark(result))

    def test_end_to_end_benchmark_validates(self, tmp_path):
        result = run_fleet_benchmark(
            "tiny-sim", budget=9, deployment="synthetic",
            replica_counts=(1, 2), num_requests=8, nodes_per_request=2,
            cold_start_repeats=2,
            artifact_path=tmp_path / "bench-artifact.npz")
        check_fleet_benchmark_schema(result)
        assert result["failover"]["requests_lost"] == 0
        assert result["parity"]["mmap_bitwise_equal"]
        target = tmp_path / "BENCH_fleet.json"
        target.write_text(json.dumps(result))
        assert main(["bench-schema", str(target)]) == 0


# ----------------------------------------------------------------------
# CLI integration + corrupt-artifact regressions
# ----------------------------------------------------------------------
class TestFleetCli:
    def test_serve_fleet_roundtrip(self, capsys, synthetic_artifact):
        code = main(["serve-fleet", "--artifact", str(synthetic_artifact),
                     "--replicas", "1", "--requests", "4",
                     "--nodes-per-request", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "req/s" in out
        assert "served 4/4" in out

    def test_list_shows_routers(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        for name in ("round-robin", "least-loaded", "consistent-hash"):
            assert name in out

    def test_bench_schema_validates_committed_artifacts(self, capsys):
        from pathlib import Path
        committed = sorted(str(p) for p in Path(".").glob("BENCH_*.json"))
        if not committed:
            pytest.skip("no committed benchmark artifacts in cwd")
        assert main(["bench-schema", *committed]) == 0
        assert "ok" in capsys.readouterr().out

    def test_bench_schema_rejects_unknown_kind(self, capsys, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"kind": "mystery"}))
        assert main(["bench-schema", str(bad)]) == 2
        assert "unknown benchmark kind" in capsys.readouterr().err

    def test_bench_schema_missing_file_exits_cleanly(self, capsys, tmp_path):
        assert main(["bench-schema", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestCorruptArtifactRegression:
    def test_serve_truncated_artifact_exits_2(self, capsys,
                                              synthetic_artifact, tmp_path):
        truncated = tmp_path / "truncated.npz"
        truncated.write_bytes(synthetic_artifact.read_bytes()[:1500])
        code = main(["serve", "--artifact", str(truncated),
                     "--batch-mode", "node"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "truncated.npz" in err

    def test_serve_mid_corrupt_artifact_exits_2(self, capsys, fleet_bundles,
                                                tmp_path):
        bundle, _ = fleet_bundles["synthetic"]
        source = bundle.save(tmp_path / "ok.npz")  # compressed layout
        data = bytearray(source.read_bytes())
        mid = len(data) * 2 // 5
        data[mid:mid + 48] = b"\x00" * 48
        corrupt = tmp_path / "corrupt.npz"
        corrupt.write_bytes(bytes(data))
        code = main(["serve", "--artifact", str(corrupt),
                     "--batch-mode", "node"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "corrupt" in err

    def test_serve_online_corrupt_artifact_exits_2(self, capsys, tmp_path):
        not_npz = tmp_path / "plain.npz"
        not_npz.write_text("definitely not a zip archive")
        code = main(["serve-online", "--artifact", str(not_npz),
                     "--requests", "4"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
