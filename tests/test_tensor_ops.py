"""Gradient checks and semantics for every autodiff primitive."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import (
    Tensor,
    abs_,
    add,
    concat,
    div,
    dropout,
    exp,
    gather_rows,
    gradcheck,
    log,
    matmul,
    maximum_const,
    mul,
    neg,
    power,
    relu,
    reshape,
    scatter_rows_add,
    sigmoid,
    slice_rows,
    sqrt,
    sub,
    sum_to,
    tanh,
    tensor_mean,
    tensor_sum,
    transpose,
)

RNG = np.random.default_rng(0)


def t(shape, positive=False):
    data = RNG.standard_normal(shape)
    if positive:
        data = np.abs(data) + 0.5
    return Tensor(data, requires_grad=True)


class TestElementwise:
    def test_add_forward(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        assert np.allclose(add(a, b).data, [4.0, 6.0])

    def test_add_gradcheck(self):
        a, b = t((3, 4)), t((3, 4))
        gradcheck(lambda a, b: tensor_sum(mul(add(a, b), add(a, b))), [a, b])

    def test_add_broadcast_gradcheck(self):
        a, b = t((3, 4)), t((4,))
        gradcheck(lambda a, b: tensor_sum(mul(add(a, b), add(a, b))), [a, b])

    def test_add_broadcast_scalar(self):
        a = t((2, 2))
        b = Tensor(2.0, requires_grad=True)
        gradcheck(lambda a, b: tensor_sum(add(a, b)), [a, b])

    def test_sub_gradcheck(self):
        a, b = t((2, 5)), t((2, 5))
        gradcheck(lambda a, b: tensor_sum(mul(sub(a, b), sub(a, b))), [a, b])

    def test_mul_gradcheck(self):
        a, b = t((4, 3)), t((4, 3))
        gradcheck(lambda a, b: tensor_sum(mul(a, b)), [a, b])

    def test_mul_broadcast_column(self):
        a, b = t((4, 3)), t((4, 1))
        gradcheck(lambda a, b: tensor_sum(mul(a, b)), [a, b])

    def test_div_gradcheck(self):
        a, b = t((3, 3)), t((3, 3), positive=True)
        gradcheck(lambda a, b: tensor_sum(div(a, b)), [a, b])

    def test_div_forward(self):
        out = div(Tensor([6.0, 9.0]), Tensor([2.0, 3.0]))
        assert np.allclose(out.data, [3.0, 3.0])

    def test_neg(self):
        a = t((2, 3))
        gradcheck(lambda a: tensor_sum(mul(neg(a), neg(a))), [a])

    def test_power_gradcheck(self):
        a = t((3, 3), positive=True)
        gradcheck(lambda a: tensor_sum(power(a, 3.0)), [a])

    def test_power_negative_exponent(self):
        a = t((3,), positive=True)
        gradcheck(lambda a: tensor_sum(power(a, -0.5)), [a])

    def test_exp_gradcheck(self):
        a = t((2, 4))
        gradcheck(lambda a: tensor_sum(exp(a)), [a])

    def test_log_gradcheck(self):
        a = t((2, 4), positive=True)
        gradcheck(lambda a: tensor_sum(log(a)), [a])

    def test_sqrt_matches_numpy(self):
        a = Tensor([4.0, 9.0])
        assert np.allclose(sqrt(a).data, [2.0, 3.0])

    def test_relu_gradcheck(self):
        a = Tensor(RNG.standard_normal((4, 4)) + 0.1, requires_grad=True)
        gradcheck(lambda a: tensor_sum(relu(a)), [a])

    def test_relu_zeroes_negatives(self):
        out = relu(Tensor([-1.0, 0.0, 2.0]))
        assert np.allclose(out.data, [0.0, 0.0, 2.0])

    def test_sigmoid_gradcheck(self):
        a = t((3, 3))
        gradcheck(lambda a: tensor_sum(sigmoid(a)), [a])

    def test_sigmoid_extreme_values_stable(self):
        out = sigmoid(Tensor([-1000.0, 1000.0]))
        assert np.all(np.isfinite(out.data))
        assert out.data[0] == pytest.approx(0.0)
        assert out.data[1] == pytest.approx(1.0)

    def test_tanh_gradcheck(self):
        a = t((3, 2))
        gradcheck(lambda a: tensor_sum(tanh(a)), [a])

    def test_abs_gradcheck(self):
        a = Tensor(RNG.standard_normal((3, 3)) + 0.2, requires_grad=True)
        gradcheck(lambda a: tensor_sum(abs_(a)), [a])

    def test_maximum_const(self):
        a = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        out = maximum_const(a, 0.0)
        assert np.allclose(out.data, [0.0, 0.5, 3.0])
        gradcheck(lambda a: tensor_sum(mul(maximum_const(a, 0.0),
                                           maximum_const(a, 0.0))), [a])


class TestMatmulAndShapes:
    def test_matmul_2d_gradcheck(self):
        a, b = t((3, 4)), t((4, 2))
        gradcheck(lambda a, b: tensor_sum(matmul(a, b)), [a, b])

    def test_matmul_vector_matrix(self):
        a, b = t((4,)), t((4, 3))
        gradcheck(lambda a, b: tensor_sum(matmul(a, b)), [a, b])

    def test_matmul_matrix_vector(self):
        a, b = t((3, 4)), t((4,))
        gradcheck(lambda a, b: tensor_sum(matmul(a, b)), [a, b])

    def test_matmul_vector_vector(self):
        a, b = t((5,)), t((5,))
        gradcheck(lambda a, b: matmul(a, b), [a, b])

    def test_matmul_rank3_rejected(self):
        with pytest.raises(ShapeError):
            matmul(Tensor(np.ones((2, 2, 2))), Tensor(np.ones((2, 2))))

    def test_transpose_roundtrip(self):
        a = t((3, 5))
        assert np.allclose(transpose(transpose(a)).data, a.data)

    def test_transpose_gradcheck(self):
        a = t((2, 4))
        gradcheck(lambda a: tensor_sum(mul(transpose(a), transpose(a))), [a])

    def test_reshape_gradcheck(self):
        a = t((2, 6))
        gradcheck(lambda a: tensor_sum(mul(reshape(a, (3, 4)),
                                           reshape(a, (3, 4)))), [a])

    def test_reshape_preserves_data(self):
        a = Tensor(np.arange(6.0))
        assert np.allclose(a.reshape(2, 3).data, np.arange(6.0).reshape(2, 3))


class TestReductions:
    def test_sum_all(self):
        a = t((3, 4))
        assert tensor_sum(a).item() == pytest.approx(a.data.sum())

    def test_sum_axis0_gradcheck(self):
        a = t((3, 4))
        gradcheck(lambda a: tensor_sum(mul(tensor_sum(a, axis=0),
                                           tensor_sum(a, axis=0))), [a])

    def test_sum_axis1_keepdims(self):
        a = t((3, 4))
        out = tensor_sum(a, axis=1, keepdims=True)
        assert out.shape == (3, 1)
        gradcheck(lambda a: tensor_sum(mul(tensor_sum(a, axis=1, keepdims=True),
                                           tensor_sum(a, axis=1, keepdims=True))), [a])

    def test_sum_negative_axis(self):
        a = t((2, 3))
        assert tensor_sum(a, axis=-1).shape == (2,)

    def test_mean_matches_numpy(self):
        a = t((4, 5))
        assert tensor_mean(a).item() == pytest.approx(a.data.mean())

    def test_mean_axis_gradcheck(self):
        a = t((4, 5))
        gradcheck(lambda a: tensor_sum(mul(tensor_mean(a, axis=0),
                                           tensor_mean(a, axis=0))), [a])

    def test_sum_to_inverse_of_broadcast(self):
        a = t((1, 4))
        broadcast = add(a, Tensor(np.zeros((3, 4))))
        reduced = sum_to(broadcast, (1, 4))
        assert reduced.shape == (1, 4)
        assert np.allclose(reduced.data, 3 * a.data)

    def test_sum_to_invalid_shape(self):
        with pytest.raises(ShapeError):
            sum_to(Tensor(np.ones((2, 2))), (2, 2, 2))


class TestGatherScatterSlice:
    def test_gather_rows_forward(self):
        a = Tensor(np.arange(12.0).reshape(4, 3))
        out = gather_rows(a, np.array([2, 0]))
        assert np.allclose(out.data, [[6, 7, 8], [0, 1, 2]])

    def test_gather_rows_duplicates_gradcheck(self):
        a = t((4, 3))
        idx = np.array([0, 0, 2, 3])
        gradcheck(lambda a: tensor_sum(mul(gather_rows(a, idx),
                                           gather_rows(a, idx))), [a])

    def test_gather_rejects_2d_indices(self):
        with pytest.raises(ShapeError):
            gather_rows(Tensor(np.ones((3, 2))), np.ones((2, 2), dtype=int))

    def test_scatter_rows_add_accumulates(self):
        a = Tensor(np.ones((3, 2)))
        out = scatter_rows_add(a, np.array([1, 1, 0]), (4, 2))
        assert np.allclose(out.data, [[1, 1], [2, 2], [0, 0], [0, 0]])

    def test_scatter_gradcheck(self):
        a = t((3, 2))
        idx = np.array([1, 1, 0])
        gradcheck(lambda a: tensor_sum(mul(scatter_rows_add(a, idx, (4, 2)),
                                           scatter_rows_add(a, idx, (4, 2)))), [a])

    def test_concat_axis0(self):
        a, b = t((2, 3)), t((4, 3))
        out = concat([a, b], axis=0)
        assert out.shape == (6, 3)
        gradcheck(lambda a, b: tensor_sum(mul(concat([a, b], axis=0),
                                              concat([a, b], axis=0))), [a, b])

    def test_concat_axis1_gradcheck(self):
        a, b = t((3, 2)), t((3, 5))
        gradcheck(lambda a, b: tensor_sum(mul(concat([a, b], axis=1),
                                              concat([a, b], axis=1))), [a, b])

    def test_concat_empty_rejected(self):
        with pytest.raises(ShapeError):
            concat([], axis=0)

    def test_slice_rows(self):
        a = t((6, 3))
        out = slice_rows(a, 2, 5)
        assert out.shape == (3, 3)
        assert np.allclose(out.data, a.data[2:5])
        gradcheck(lambda a: tensor_sum(mul(slice_rows(a, 2, 5),
                                           slice_rows(a, 2, 5))), [a])


class TestDropout:
    def test_dropout_eval_is_identity(self):
        a = t((10, 10))
        out = dropout(a, 0.5, training=False)
        assert out is a

    def test_dropout_zero_rate_identity(self):
        a = t((4, 4))
        assert dropout(a, 0.0) is a

    def test_dropout_scales_surviving_entries(self):
        rng = np.random.default_rng(0)
        a = Tensor(np.ones((100, 100)))
        out = dropout(a, 0.5, rng=rng).data
        surviving = out[out > 0]
        assert np.allclose(surviving, 2.0)
        assert 0.4 < (out > 0).mean() < 0.6

    def test_dropout_invalid_rate(self):
        with pytest.raises(ShapeError):
            dropout(Tensor(np.ones(3)), 1.0)
